#include <gtest/gtest.h>

#include <algorithm>
#include <queue>
#include <vector>

#include "util/indexed_heap.h"
#include "util/rng.h"
#include "util/stats.h"
#include "util/table.h"

namespace ah {
namespace {

TEST(IndexedHeapTest, StartsEmpty) {
  IndexedHeap heap(8);
  EXPECT_TRUE(heap.Empty());
  EXPECT_EQ(heap.Size(), 0u);
  EXPECT_FALSE(heap.Contains(0));
}

TEST(IndexedHeapTest, PopsInKeyOrder) {
  IndexedHeap heap(8);
  heap.PushOrDecrease(3, 30);
  heap.PushOrDecrease(1, 10);
  heap.PushOrDecrease(2, 20);
  auto [k1, i1] = heap.PopMin();
  auto [k2, i2] = heap.PopMin();
  auto [k3, i3] = heap.PopMin();
  EXPECT_EQ(i1, 1u);
  EXPECT_EQ(k1, 10u);
  EXPECT_EQ(i2, 2u);
  EXPECT_EQ(k2, 20u);
  EXPECT_EQ(i3, 3u);
  EXPECT_EQ(k3, 30u);
  EXPECT_TRUE(heap.Empty());
}

TEST(IndexedHeapTest, DecreaseKeyReordersEntry) {
  IndexedHeap heap(8);
  heap.PushOrDecrease(0, 50);
  heap.PushOrDecrease(1, 40);
  EXPECT_TRUE(heap.PushOrDecrease(0, 5));
  EXPECT_EQ(heap.MinId(), 0u);
  EXPECT_EQ(heap.KeyOf(0), 5u);
}

TEST(IndexedHeapTest, IncreaseIsIgnored) {
  IndexedHeap heap(4);
  heap.PushOrDecrease(2, 7);
  EXPECT_FALSE(heap.PushOrDecrease(2, 9));
  EXPECT_EQ(heap.KeyOf(2), 7u);
}

TEST(IndexedHeapTest, ContainsTracksMembership) {
  IndexedHeap heap(4);
  heap.PushOrDecrease(2, 7);
  EXPECT_TRUE(heap.Contains(2));
  heap.PopMin();
  EXPECT_FALSE(heap.Contains(2));
}

TEST(IndexedHeapTest, ClearAllowsReuse) {
  IndexedHeap heap(4);
  heap.PushOrDecrease(0, 1);
  heap.PushOrDecrease(1, 2);
  heap.Clear();
  EXPECT_TRUE(heap.Empty());
  EXPECT_FALSE(heap.Contains(0));
  heap.PushOrDecrease(1, 5);
  EXPECT_EQ(heap.MinId(), 1u);
}

TEST(IndexedHeapTest, ResizeGrowsUniverse) {
  IndexedHeap heap(2);
  heap.Resize(100);
  heap.PushOrDecrease(99, 3);
  EXPECT_EQ(heap.MinId(), 99u);
}

TEST(IndexedHeapTest, RandomizedAgainstStdPriorityQueue) {
  Rng rng(2024);
  for (int trial = 0; trial < 20; ++trial) {
    IndexedHeap heap(512);
    // Reference: id -> best key (std::priority_queue with lazy deletion).
    std::vector<Dist> best(512, kInfDist);
    using Entry = std::pair<Dist, std::uint32_t>;
    std::priority_queue<Entry, std::vector<Entry>, std::greater<Entry>> ref;
    for (int op = 0; op < 400; ++op) {
      if (rng.Chance(0.7) || ref.empty()) {
        const std::uint32_t id = static_cast<std::uint32_t>(rng.Uniform(512));
        const Dist key = rng.Uniform(1000);
        if (key < best[id]) {
          best[id] = key;
          ref.push({key, id});
        }
        heap.PushOrDecrease(id, key);
        if (best[id] < kInfDist) {
          ASSERT_TRUE(heap.Contains(id));
          ASSERT_EQ(heap.KeyOf(id), best[id]);
        }
      } else {
        while (!ref.empty() && best[ref.top().second] != ref.top().first) {
          ref.pop();  // Stale.
        }
        if (ref.empty()) continue;
        auto [k, id] = heap.PopMin();
        ASSERT_EQ(k, ref.top().first);
        best[id] = kInfDist;
        // Note: several ids can share the min key; accept any of them.
        std::vector<Entry> popped;
        bool matched = false;
        while (!ref.empty() && ref.top().first == k) {
          if (ref.top().second == id) {
            matched = true;
            ref.pop();
            break;
          }
          popped.push_back(ref.top());
          ref.pop();
        }
        for (const Entry& e : popped) ref.push(e);
        ASSERT_TRUE(matched);
      }
    }
  }
}

TEST(SampleStatsTest, MeanMinMax) {
  SampleStats s;
  s.AddAll({4, 1, 7});
  EXPECT_DOUBLE_EQ(s.Mean(), 4.0);
  EXPECT_DOUBLE_EQ(s.Min(), 1.0);
  EXPECT_DOUBLE_EQ(s.Max(), 7.0);
  EXPECT_EQ(s.Count(), 3u);
}

TEST(SampleStatsTest, NearestRankQuantiles) {
  SampleStats s;
  for (int i = 1; i <= 100; ++i) s.Add(i);
  EXPECT_DOUBLE_EQ(s.Quantile(0.90), 90.0);
  EXPECT_DOUBLE_EQ(s.Quantile(0.99), 99.0);
  EXPECT_DOUBLE_EQ(s.Quantile(1.0), 100.0);
  EXPECT_DOUBLE_EQ(s.Quantile(0.0), 1.0);
}

TEST(SampleStatsTest, QuantileSingleElement) {
  SampleStats s;
  s.Add(42);
  EXPECT_DOUBLE_EQ(s.Quantile(0.5), 42.0);
  EXPECT_DOUBLE_EQ(s.Quantile(0.99), 42.0);
}

TEST(SampleStatsTest, EmptyThrows) {
  SampleStats s;
  EXPECT_THROW(s.Mean(), std::logic_error);
  EXPECT_THROW(s.Quantile(0.5), std::logic_error);
  EXPECT_THROW(s.Min(), std::logic_error);
}

TEST(SampleStatsTest, StdDev) {
  SampleStats s;
  s.AddAll({2, 4, 4, 4, 5, 5, 7, 9});
  EXPECT_NEAR(s.StdDev(), 2.138, 0.001);
}

TEST(SampleStatsTest, ResetClears) {
  SampleStats s;
  s.Add(1);
  s.Reset();
  EXPECT_TRUE(s.Empty());
}

TEST(TextTableTest, RendersAlignedColumns) {
  TextTable t({"name", "value"});
  t.AddRow({"x", "1"});
  t.AddRow({"longer", "22"});
  const std::string out = t.Render();
  EXPECT_NE(out.find("name"), std::string::npos);
  EXPECT_NE(out.find("longer"), std::string::npos);
  EXPECT_NE(out.find("----"), std::string::npos);
  EXPECT_EQ(t.NumRows(), 2u);
}

TEST(TextTableTest, PadsShortRows) {
  TextTable t({"a", "b", "c"});
  t.AddRow({"only"});
  EXPECT_NO_THROW(t.Render());
}

TEST(TextTableTest, NumFormatting) {
  EXPECT_EQ(TextTable::Num(3.14159, 2), "3.14");
  EXPECT_EQ(TextTable::Num(2.0, 0), "2");
}

TEST(TextTableTest, IntThousandsSeparators) {
  EXPECT_EQ(TextTable::Int(0), "0");
  EXPECT_EQ(TextTable::Int(999), "999");
  EXPECT_EQ(TextTable::Int(1000), "1,000");
  EXPECT_EQ(TextTable::Int(23947347), "23,947,347");
  EXPECT_EQ(TextTable::Int(-1234), "-1,234");
}

TEST(RngTest, DeterministicPerSeed) {
  Rng a(7);
  Rng b(7);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(7);
  Rng b(8);
  int equal = 0;
  for (int i = 0; i < 100; ++i) equal += a.Next() == b.Next();
  EXPECT_LT(equal, 5);
}

TEST(RngTest, UniformInRange) {
  Rng rng(3);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.Uniform(17), 17u);
    const auto v = rng.UniformInt(-5, 5);
    EXPECT_GE(v, -5);
    EXPECT_LE(v, 5);
    const double d = rng.UniformDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RngTest, SplitIsIndependent) {
  Rng a(7);
  Rng child = a.Split();
  EXPECT_NE(a.Next(), child.Next());
}

}  // namespace
}  // namespace ah
