#include <gtest/gtest.h>

#include <sstream>

#include "ch/ch_index.h"
#include "core/ah_query.h"
#include "routing/dijkstra.h"
#include "test_util.h"
#include "util/serialize.h"

namespace ah {
namespace {

TEST(BinaryIoTest, PodRoundTrip) {
  std::stringstream ss;
  BinaryWriter w(ss);
  w.Pod<std::uint32_t>(42);
  w.Pod<double>(3.5);
  BinaryReader r(ss);
  EXPECT_EQ(r.Pod<std::uint32_t>(), 42u);
  EXPECT_DOUBLE_EQ(r.Pod<double>(), 3.5);
}

TEST(BinaryIoTest, VectorRoundTrip) {
  std::stringstream ss;
  BinaryWriter w(ss);
  std::vector<std::uint64_t> values = {1, 2, 3, 1ull << 50};
  w.Vector(values);
  w.Vector(std::vector<std::uint64_t>{});
  BinaryReader r(ss);
  EXPECT_EQ(r.Vector<std::uint64_t>(), values);
  EXPECT_TRUE(r.Vector<std::uint64_t>().empty());
}

TEST(BinaryIoTest, MagicValidation) {
  std::stringstream ss;
  BinaryWriter w(ss);
  w.Magic("ABCD", 2);
  BinaryReader r(ss);
  EXPECT_EQ(r.Magic("ABCD", 3), 2);

  std::stringstream ss2;
  BinaryWriter w2(ss2);
  w2.Magic("ABCD", 2);
  BinaryReader r2(ss2);
  EXPECT_THROW(r2.Magic("WXYZ", 3), std::runtime_error);
}

TEST(BinaryIoTest, VersionTooNewRejected) {
  std::stringstream ss;
  BinaryWriter w(ss);
  w.Magic("ABCD", 9);
  BinaryReader r(ss);
  EXPECT_THROW(r.Magic("ABCD", 3), std::runtime_error);
}

TEST(BinaryIoTest, TruncationDetected) {
  std::stringstream ss;
  BinaryWriter w(ss);
  w.Pod<std::uint64_t>(10);  // Vector length without payload.
  BinaryReader r(ss);
  EXPECT_THROW(r.Vector<std::uint64_t>(), std::runtime_error);
}

TEST(GraphSerializeTest, RoundTripPreservesEverything) {
  Graph g = testing::MakeRandomGraph(80, 240, 3);
  std::stringstream ss;
  g.Save(ss);
  Graph g2 = Graph::Load(ss);
  ASSERT_EQ(g2.NumNodes(), g.NumNodes());
  ASSERT_EQ(g2.NumArcs(), g.NumArcs());
  for (NodeId v = 0; v < g.NumNodes(); ++v) {
    EXPECT_EQ(g2.Coord(v), g.Coord(v));
    ASSERT_EQ(g2.OutDegree(v), g.OutDegree(v));
    for (const Arc& a : g.OutArcs(v)) {
      EXPECT_EQ(g2.ArcWeight(v, a.head), a.weight);
    }
  }
}

TEST(GraphSerializeTest, RejectsGarbage) {
  std::stringstream ss;
  ss << "this is not a graph";
  EXPECT_THROW(Graph::Load(ss), std::runtime_error);
}

TEST(ChSerializeTest, LoadedIndexAnswersIdentically) {
  Graph g = testing::MakeRoadGraph(16, 4);
  ChIndex built = ChIndex::Build(g);
  std::stringstream ss;
  built.Save(ss);
  ChIndex loaded = ChIndex::Load(ss);
  EXPECT_EQ(loaded.build_stats().shortcuts, built.build_stats().shortcuts);

  ChQuery q1(built);
  ChQuery q2(loaded);
  Dijkstra dijkstra(g);
  Rng rng(4);
  for (int i = 0; i < 40; ++i) {
    const NodeId s = static_cast<NodeId>(rng.Uniform(g.NumNodes()));
    const NodeId t = static_cast<NodeId>(rng.Uniform(g.NumNodes()));
    const Dist ref = dijkstra.Distance(s, t);
    ASSERT_EQ(q1.Distance(s, t), ref);
    ASSERT_EQ(q2.Distance(s, t), ref);
  }
}

TEST(AhSerializeTest, LoadedIndexAnswersIdentically) {
  Graph g = testing::MakeRoadGraph(18, 5);
  AhIndex built = AhIndex::Build(g);
  std::stringstream ss;
  built.Save(ss);
  AhIndex loaded = AhIndex::Load(ss);
  EXPECT_EQ(loaded.MaxLevel(), built.MaxLevel());
  EXPECT_EQ(loaded.build_stats().shortcuts, built.build_stats().shortcuts);
  for (NodeId v = 0; v < g.NumNodes(); ++v) {
    ASSERT_EQ(loaded.LevelOf(v), built.LevelOf(v));
    ASSERT_EQ(loaded.search_graph().RankOf(v), built.search_graph().RankOf(v));
  }

  AhQuery q1(built);
  AhQuery q2(loaded);
  Dijkstra dijkstra(g);
  Rng rng(5);
  for (int i = 0; i < 60; ++i) {
    const NodeId s = static_cast<NodeId>(rng.Uniform(g.NumNodes()));
    const NodeId t = static_cast<NodeId>(rng.Uniform(g.NumNodes()));
    const Dist ref = dijkstra.Distance(s, t);
    ASSERT_EQ(q1.Distance(s, t), ref);
    ASSERT_EQ(q2.Distance(s, t), ref);
  }
}

TEST(AhSerializeTest, PathQueriesWorkOnLoadedIndex) {
  Graph g = testing::MakeRoadGraph(14, 6);
  AhIndex built = AhIndex::Build(g);
  std::stringstream ss;
  built.Save(ss);
  AhIndex loaded = AhIndex::Load(ss);
  AhQuery query(loaded);
  Dijkstra dijkstra(g);
  Rng rng(6);
  for (int i = 0; i < 20; ++i) {
    const NodeId s = static_cast<NodeId>(rng.Uniform(g.NumNodes()));
    const NodeId t = static_cast<NodeId>(rng.Uniform(g.NumNodes()));
    const Dist ref = dijkstra.Distance(s, t);
    const PathResult p = query.Path(s, t);
    ASSERT_EQ(p.length, ref);
    if (ref != kInfDist) {
      EXPECT_TRUE(IsValidPath(g, p.nodes, s, t, ref));
    }
  }
}

TEST(AhSerializeTest, GatewaysSurviveRoundTrip) {
  Graph g = testing::MakeRoadGraph(16, 7);
  AhIndex built = AhIndex::Build(g);
  std::stringstream ss;
  built.Save(ss);
  AhIndex loaded = AhIndex::Load(ss);
  for (NodeId v = 0; v < g.NumNodes(); v += 3) {
    const Level j = built.LevelOf(v) + 1;
    const auto a = built.FwdGateways(v, j);
    const auto b = loaded.FwdGateways(v, j);
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
      EXPECT_EQ(a[i].node, b[i].node);
      EXPECT_EQ(a[i].dist, b[i].dist);
    }
  }
}

}  // namespace
}  // namespace ah
