#include <gtest/gtest.h>

#include <unordered_set>

#include "hgrid/grid_hierarchy.h"
#include "hgrid/window.h"
#include "test_util.h"

namespace ah {
namespace {

std::vector<Point> SpreadPoints(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<Point> pts;
  for (std::size_t i = 0; i < n; ++i) {
    pts.push_back(Point{static_cast<std::int32_t>(rng.Uniform(1 << 20)),
                        static_cast<std::int32_t>(rng.Uniform(1 << 20))});
  }
  return pts;
}

TEST(GridHierarchyTest, DepthAndGridSizes) {
  const auto pts = SpreadPoints(500, 4);
  GridHierarchy gh(pts);
  ASSERT_GE(gh.Depth(), 1);
  // R_h is always the 4x4 grid; R_1 the finest with 2^(h+1) cells.
  EXPECT_EQ(gh.CellsPerSide(gh.Depth()), 4);
  EXPECT_EQ(gh.CellsPerSide(1), 1 << (gh.Depth() + 1));
  for (std::int32_t i = 1; i < gh.Depth(); ++i) {
    EXPECT_EQ(gh.CellsPerSide(i), 2 * gh.CellsPerSide(i + 1));
  }
}

TEST(GridHierarchyTest, FinestGridMostlySingleOccupancy) {
  const auto pts = SpreadPoints(2000, 5);
  GridHierarchy gh(pts);
  EXPECT_LE(gh.FinestCollisionFraction(), 0.05);
}

TEST(GridHierarchyTest, DepthCapRespected) {
  const auto pts = SpreadPoints(5000, 6);
  GridHierarchy gh(pts, /*max_depth=*/4);
  EXPECT_LE(gh.Depth(), 4);
}

TEST(GridHierarchyTest, SinglePointWorks) {
  std::vector<Point> pts = {{100, 100}};
  GridHierarchy gh(pts);
  EXPECT_GE(gh.Depth(), 1);
  EXPECT_EQ(gh.SeparationLevel({100, 100}, {100, 100}), 0);
}

TEST(GridHierarchyTest, EmptyThrows) {
  std::vector<Point> none;
  EXPECT_THROW(GridHierarchy gh(none), std::invalid_argument);
}

TEST(GridHierarchyTest, SeparationLevelZeroForClosePoints) {
  const auto pts = SpreadPoints(100, 7);
  GridHierarchy gh(pts);
  EXPECT_EQ(gh.SeparationLevel(pts[0], pts[0]), 0);
}

TEST(GridHierarchyTest, SeparationLevelHighForOppositeCorners) {
  std::vector<Point> pts = {{0, 0}, {1 << 20, 1 << 20}};
  for (const Point& p : SpreadPoints(200, 8)) pts.push_back(p);
  GridHierarchy gh(pts);
  // Opposite corners of the bounding square cannot share a 3x3 region even
  // in the 4x4 grid, so separation = h.
  EXPECT_EQ(gh.SeparationLevel({0, 0}, {1 << 20, 1 << 20}), gh.Depth());
}

TEST(GridHierarchyTest, SeparationLevelMonotoneInDistance) {
  const auto pts = SpreadPoints(300, 9);
  GridHierarchy gh(pts);
  const Point origin{0, 0};
  std::int32_t prev = gh.Depth();
  // Walking the diagonal toward origin, separation level never increases.
  for (std::int32_t d = 1 << 20; d > 0; d /= 2) {
    const std::int32_t level = gh.SeparationLevel(origin, {d, d});
    EXPECT_LE(level, prev + 1);  // Allow discretization wiggle of one.
    prev = level;
  }
}

TEST(WindowTest, ContainsAndStrips) {
  Window w{10, 20};
  EXPECT_TRUE(w.ContainsCell({10, 20}));
  EXPECT_TRUE(w.ContainsCell({13, 23}));
  EXPECT_FALSE(w.ContainsCell({14, 20}));
  EXPECT_FALSE(w.ContainsCell({9, 20}));
  EXPECT_TRUE(w.InWestStrip({10, 21}));
  EXPECT_TRUE(w.InEastStrip({13, 21}));
  EXPECT_TRUE(w.InSouthStrip({11, 20}));
  EXPECT_TRUE(w.InNorthStrip({11, 23}));
  EXPECT_FALSE(w.InWestStrip({11, 21}));
}

TEST(WindowTest, BisectorSides) {
  Window w{0, 0};
  EXPECT_EQ(w.VerticalSide({0, 0}), -1);
  EXPECT_EQ(w.VerticalSide({1, 0}), -1);
  EXPECT_EQ(w.VerticalSide({2, 0}), +1);
  EXPECT_EQ(w.VerticalSide({3, 0}), +1);
  EXPECT_EQ(w.HorizontalSide({0, 1}), -1);
  EXPECT_EQ(w.HorizontalSide({0, 2}), +1);
  // Outside cells extrapolate.
  EXPECT_EQ(w.VerticalSide({-2, 0}), -1);
  EXPECT_EQ(w.VerticalSide({7, 0}), +1);
}

TEST(WindowTest, CrossesBisector) {
  Window w{0, 0};
  EXPECT_TRUE(w.CrossesBisector({1, 1}, {2, 1}, BisectorAxis::kVertical));
  EXPECT_FALSE(w.CrossesBisector({0, 1}, {1, 1}, BisectorAxis::kVertical));
  EXPECT_TRUE(w.CrossesBisector({1, 1}, {1, 2}, BisectorAxis::kHorizontal));
  EXPECT_FALSE(w.CrossesBisector({1, 0}, {1, 1}, BisectorAxis::kHorizontal));
}

TEST(WindowTest, SpanningEndpointQualification) {
  Window w{0, 0};
  // West strip (col 0) to east strip (col 3): qualified.
  EXPECT_TRUE(w.QualifiesAsSpanningEndpoints({0, 1}, {3, 2},
                                             BisectorAxis::kVertical));
  // Either endpoint adjacent to the bisector (cols 1, 2): not qualified.
  EXPECT_FALSE(w.QualifiesAsSpanningEndpoints({1, 1}, {3, 2},
                                              BisectorAxis::kVertical));
  EXPECT_FALSE(w.QualifiesAsSpanningEndpoints({0, 1}, {2, 2},
                                              BisectorAxis::kVertical));
  // One-hop-outside endpoints still qualify (local paths may exit B).
  EXPECT_TRUE(w.QualifiesAsSpanningEndpoints({-1, 1}, {4, 2},
                                             BisectorAxis::kVertical));
  // Horizontal axis mirrors the logic on rows.
  EXPECT_TRUE(w.QualifiesAsSpanningEndpoints({1, 0}, {2, 3},
                                             BisectorAxis::kHorizontal));
  EXPECT_FALSE(w.QualifiesAsSpanningEndpoints({1, 1}, {2, 3},
                                              BisectorAxis::kHorizontal));
}

TEST(CellIndexTest, BucketsNodesByCell) {
  SquareGrid grid(0, 0, 100, 10);
  std::vector<Point> coords = {{5, 5}, {6, 6}, {95, 95}};
  std::vector<NodeId> nodes = {0, 1, 2};
  CellIndex index(grid, coords, nodes);
  EXPECT_EQ(index.NodesIn({0, 0}).size(), 2u);
  EXPECT_EQ(index.NodesIn({9, 9}).size(), 1u);
  EXPECT_EQ(index.NodesIn({5, 5}).size(), 0u);
  EXPECT_EQ(index.OccupiedCells().size(), 2u);
}

TEST(CellIndexTest, CollectWindowNodes) {
  SquareGrid grid(0, 0, 160, 16);
  std::vector<Point> coords = {{5, 5}, {35, 5}, {155, 155}};
  std::vector<NodeId> nodes = {0, 1, 2};
  CellIndex index(grid, coords, nodes);
  std::vector<NodeId> out;
  index.CollectWindowNodes(Window{0, 0}, &out);
  EXPECT_EQ(out.size(), 2u);  // Nodes 0 and 1; node 2 is far away.
}

TEST(EnumerateWindowsTest, CoversEveryOccupiedCell) {
  SquareGrid grid(0, 0, 1600, 16);
  Rng rng(11);
  std::vector<Point> coords;
  std::vector<NodeId> nodes;
  for (int i = 0; i < 120; ++i) {
    coords.push_back(Point{static_cast<std::int32_t>(rng.Uniform(1600)),
                           static_cast<std::int32_t>(rng.Uniform(1600))});
    nodes.push_back(static_cast<NodeId>(i));
  }
  CellIndex index(grid, coords, nodes);
  const auto windows = EnumerateWindows(grid, index);
  // Every occupied cell must be inside at least one window, and window
  // anchors stay within the grid.
  for (const Cell& c : index.OccupiedCells()) {
    bool covered = false;
    for (const Window& w : windows) covered |= w.ContainsCell(c);
    EXPECT_TRUE(covered);
  }
  std::unordered_set<std::uint64_t> keys;
  for (const Window& w : windows) {
    EXPECT_GE(w.ax, 0);
    EXPECT_LE(w.ax, 12);
    EXPECT_GE(w.ay, 0);
    EXPECT_LE(w.ay, 12);
    EXPECT_TRUE(keys.insert(WindowKey(w)).second);  // No duplicates.
  }
}

TEST(EnumerateWindowsTest, TinyGridSingleWindow) {
  SquareGrid grid(0, 0, 100, 4);
  std::vector<Point> coords = {{50, 50}};
  std::vector<NodeId> nodes = {0};
  CellIndex index(grid, coords, nodes);
  const auto windows = EnumerateWindows(grid, index);
  ASSERT_EQ(windows.size(), 1u);
  EXPECT_EQ(windows[0].ax, 0);
  EXPECT_EQ(windows[0].ay, 0);
}

}  // namespace
}  // namespace ah
