#include <gtest/gtest.h>

#include <algorithm>

#include "core/ordering.h"
#include "test_util.h"

namespace ah {
namespace {

TEST(VertexCoverTest, CoversAllEdges) {
  std::vector<std::pair<NodeId, NodeId>> edges = {
      {0, 1}, {1, 2}, {2, 3}, {3, 0}, {1, 3}};
  const auto cover = GreedyVertexCover(edges);
  for (const auto& [u, v] : edges) {
    const bool covered =
        std::find(cover.begin(), cover.end(), u) != cover.end() ||
        std::find(cover.begin(), cover.end(), v) != cover.end();
    EXPECT_TRUE(covered);
  }
}

TEST(VertexCoverTest, StarPicksCenterFirst) {
  std::vector<std::pair<NodeId, NodeId>> edges = {
      {9, 1}, {9, 2}, {9, 3}, {9, 4}};
  const auto cover = GreedyVertexCover(edges);
  ASSERT_FALSE(cover.empty());
  EXPECT_EQ(cover.front(), 9u);
  EXPECT_EQ(cover.size(), 1u);
}

TEST(VertexCoverTest, EmptyEdges) {
  EXPECT_TRUE(GreedyVertexCover({}).empty());
}

TEST(VertexCoverTest, SelfLoopsIgnored) {
  std::vector<std::pair<NodeId, NodeId>> edges = {{3, 3}};
  EXPECT_TRUE(GreedyVertexCover(edges).empty());
}

LevelAssignment MakeAssignment() {
  // 10 nodes: levels 0/1/2 with pseudo-arterial edges per level.
  LevelAssignment a;
  a.level = {0, 0, 0, 0, 1, 1, 1, 2, 2, 1};
  a.max_level = 2;
  a.pseudo_arterial.resize(2);
  a.pseudo_arterial[0] = {{4, 5}, {5, 6}, {5, 9}};   // S_1: 5 is the hub.
  a.pseudo_arterial[1] = {{7, 8}};                   // S_2.
  return a;
}

TEST(OrderingTest, RankIsPermutation) {
  const AhOrdering ord = ComputeOrdering(MakeAssignment());
  ASSERT_EQ(ord.order.size(), 10u);
  std::vector<bool> seen(10, false);
  for (NodeId v : ord.order) {
    ASSERT_LT(v, 10u);
    ASSERT_FALSE(seen[v]);
    seen[v] = true;
  }
  for (NodeId v = 0; v < 10; ++v) {
    EXPECT_EQ(ord.order[ord.rank[v]], v);
  }
}

TEST(OrderingTest, RanksRespectLevels) {
  OrderingParams params;
  params.within_level = WithinLevelOrder::kVertexCover;
  params.downgrade = false;
  const AhOrdering ord = ComputeOrdering(MakeAssignment(), params);
  for (NodeId a = 0; a < 10; ++a) {
    for (NodeId b = 0; b < 10; ++b) {
      if (ord.level[a] < ord.level[b]) {
        EXPECT_LT(ord.rank[a], ord.rank[b]);
      }
    }
  }
}

TEST(OrderingTest, HubRanksHighestWithinLevel) {
  OrderingParams params;
  params.within_level = WithinLevelOrder::kVertexCover;
  params.downgrade = false;
  const AhOrdering ord = ComputeOrdering(MakeAssignment(), params);
  // Node 5 covers all three S_1 edges, so it outranks other level-1 nodes.
  for (NodeId v : {4u, 6u, 9u}) {
    EXPECT_GT(ord.rank[5], ord.rank[v]);
  }
}

TEST(OrderingTest, DowngradeMovesNonCoverNodesDown) {
  LevelAssignment a = MakeAssignment();
  OrderingParams with;
  with.within_level = WithinLevelOrder::kVertexCover;
  with.downgrade = true;
  const AhOrdering ord = ComputeOrdering(a, with);
  // Node 5 covers all of S_1; 4, 6, 9 are not in the cover → level 0.
  EXPECT_EQ(ord.level[5], 1);
  EXPECT_EQ(ord.level[4], 0);
  EXPECT_EQ(ord.level[6], 0);
  EXPECT_EQ(ord.level[9], 0);
  // S_2 = {7,8}: greedy cover picks one of them; the other is downgraded.
  EXPECT_EQ(std::max(ord.level[7], ord.level[8]), 2);
  EXPECT_EQ(std::min(ord.level[7], ord.level[8]), 1);
}

TEST(OrderingTest, RandomWithinLevelStillRespectsLevels) {
  OrderingParams params;
  params.within_level = WithinLevelOrder::kRandom;
  params.downgrade = false;
  params.seed = 5;
  const AhOrdering ord = ComputeOrdering(MakeAssignment(), params);
  // Still a permutation respecting levels.
  for (NodeId a = 0; a < 10; ++a) {
    for (NodeId b = 0; b < 10; ++b) {
      if (ord.level[a] < ord.level[b]) {
        EXPECT_LT(ord.rank[a], ord.rank[b]);
      }
    }
  }
}

TEST(OrderingTest, DeterministicPerSeed) {
  const OrderingParams p3{WithinLevelOrder::kVertexCover, true, 3};
  const AhOrdering a = ComputeOrdering(MakeAssignment(), p3);
  const AhOrdering b = ComputeOrdering(MakeAssignment(), p3);
  EXPECT_EQ(a.order, b.order);
  const OrderingParams p4{WithinLevelOrder::kVertexCover, true, 4};
  const AhOrdering c = ComputeOrdering(MakeAssignment(), p4);
  EXPECT_NE(a.order, c.order);  // Level-0 shuffle differs.
}

}  // namespace
}  // namespace ah
