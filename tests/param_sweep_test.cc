// Parameterized robustness sweeps: every index must stay *exact* across its
// whole tuning space — budgets and caps may cost performance, never
// correctness.
#include <gtest/gtest.h>

#include <string>

#include "ch/ch_index.h"
#include "core/ah_query.h"
#include "fc/fc_index.h"
#include "routing/dijkstra.h"
#include "test_util.h"

namespace ah {
namespace {

struct AhVariant {
  std::string name;
  AhParams params;
};

AhVariant MakeVariant(const std::string& name, AhParams params) {
  return AhVariant{name, params};
}

std::vector<AhVariant> AhVariants() {
  std::vector<AhVariant> out;
  out.push_back(MakeVariant("defaults", {}));
  {
    AhParams p;
    p.contraction.witness_settle_limit = 2;  // Nearly witness-free.
    out.push_back(MakeVariant("tiny_witness_budget", p));
  }
  {
    AhParams p;
    p.gateway_band = 1;  // Multi-hop jumps on every far query.
    out.push_back(MakeVariant("band_one", p));
  }
  {
    AhParams p;
    p.gateway_region_radius = 1;  // 3x3 gateway regions.
    out.push_back(MakeVariant("small_gateway_region", p));
  }
  {
    AhParams p;
    p.gateway_region_radius = 4;  // 9x9 gateway regions.
    out.push_back(MakeVariant("large_gateway_region", p));
  }
  {
    AhParams p;
    p.gateway_max_entries = 1;  // Almost every list dropped.
    out.push_back(MakeVariant("dropped_gateway_lists", p));
  }
  {
    AhParams p;
    p.gateway_settle_limit = 8;  // Gateway searches truncated hard.
    out.push_back(MakeVariant("tiny_gateway_budget", p));
  }
  {
    AhParams p;
    p.max_grid_depth = 4;  // Coarse grid stack.
    out.push_back(MakeVariant("shallow_grids", p));
  }
  {
    AhParams p;
    p.levels.min_active_nodes = 1000;  // Level computation stops early.
    out.push_back(MakeVariant("early_level_stop", p));
  }
  return out;
}

class AhParamSweepTest : public ::testing::TestWithParam<AhVariant> {};

TEST_P(AhParamSweepTest, PrunedQueriesStayExact) {
  Graph g = testing::MakeRoadGraph(20, 31);
  AhIndex index = AhIndex::Build(g, GetParam().params);
  AhQuery query(index);
  Dijkstra dijkstra(g);
  Rng rng(31);
  for (int q = 0; q < 80; ++q) {
    const NodeId s = static_cast<NodeId>(rng.Uniform(g.NumNodes()));
    const NodeId t = static_cast<NodeId>(rng.Uniform(g.NumNodes()));
    ASSERT_EQ(query.Distance(s, t), dijkstra.Distance(s, t))
        << GetParam().name << " s=" << s << " t=" << t;
  }
}

TEST_P(AhParamSweepTest, PathQueriesStayExact) {
  Graph g = testing::MakeRoadGraph(14, 32);
  AhIndex index = AhIndex::Build(g, GetParam().params);
  AhQuery query(index);
  Dijkstra dijkstra(g);
  Rng rng(32);
  for (int q = 0; q < 25; ++q) {
    const NodeId s = static_cast<NodeId>(rng.Uniform(g.NumNodes()));
    const NodeId t = static_cast<NodeId>(rng.Uniform(g.NumNodes()));
    const Dist ref = dijkstra.Distance(s, t);
    const PathResult p = query.Path(s, t);
    ASSERT_EQ(p.length, ref) << GetParam().name;
    if (ref != kInfDist) {
      ASSERT_TRUE(IsValidPath(g, p.nodes, s, t, ref)) << GetParam().name;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Variants, AhParamSweepTest,
                         ::testing::ValuesIn(AhVariants()),
                         [](const ::testing::TestParamInfo<AhVariant>& info) {
                           return info.param.name;
                         });

class ChWitnessSweepTest : public ::testing::TestWithParam<std::size_t> {};

TEST_P(ChWitnessSweepTest, ExactForAnyWitnessBudget) {
  Graph g = testing::MakeRoadGraph(16, 33);
  ChParams params;
  params.contraction.witness_settle_limit = GetParam();
  ChIndex index = ChIndex::Build(g, params);
  ChQuery query(index);
  Dijkstra dijkstra(g);
  Rng rng(33);
  for (int q = 0; q < 50; ++q) {
    const NodeId s = static_cast<NodeId>(rng.Uniform(g.NumNodes()));
    const NodeId t = static_cast<NodeId>(rng.Uniform(g.NumNodes()));
    ASSERT_EQ(query.Distance(s, t), dijkstra.Distance(s, t));
  }
}

INSTANTIATE_TEST_SUITE_P(Budgets, ChWitnessSweepTest,
                         ::testing::Values(1, 4, 20, 500));

class FcDepthSweepTest : public ::testing::TestWithParam<std::int32_t> {};

TEST_P(FcDepthSweepTest, ExactForAnyGridDepth) {
  Graph g = testing::MakeRoadGraph(14, 34);
  FcParams params;
  params.max_grid_depth = GetParam();
  FcIndex index = FcIndex::Build(g, params);
  FcQuery query(index);
  Dijkstra dijkstra(g);
  Rng rng(34);
  for (int q = 0; q < 40; ++q) {
    const NodeId s = static_cast<NodeId>(rng.Uniform(g.NumNodes()));
    const NodeId t = static_cast<NodeId>(rng.Uniform(g.NumNodes()));
    ASSERT_EQ(query.Distance(s, t), dijkstra.Distance(s, t))
        << "depth=" << GetParam();
  }
}

INSTANTIATE_TEST_SUITE_P(Depths, FcDepthSweepTest,
                         ::testing::Values(2, 4, 8, 12));

}  // namespace
}  // namespace ah
