#include <gtest/gtest.h>

#include <vector>

#include "routing/bidirectional.h"
#include "routing/dijkstra.h"
#include "routing/path.h"
#include "test_util.h"

namespace ah {
namespace {

/// Floyd-Warshall reference for tiny graphs.
std::vector<std::vector<Dist>> AllPairs(const Graph& g) {
  const std::size_t n = g.NumNodes();
  std::vector<std::vector<Dist>> d(n, std::vector<Dist>(n, kInfDist));
  for (NodeId v = 0; v < n; ++v) {
    d[v][v] = 0;
    for (const Arc& a : g.OutArcs(v)) {
      d[v][a.head] = std::min<Dist>(d[v][a.head], a.weight);
    }
  }
  for (std::size_t k = 0; k < n; ++k) {
    for (std::size_t i = 0; i < n; ++i) {
      if (d[i][k] == kInfDist) continue;
      for (std::size_t j = 0; j < n; ++j) {
        if (d[k][j] == kInfDist) continue;
        d[i][j] = std::min(d[i][j], d[i][k] + d[k][j]);
      }
    }
  }
  return d;
}

class DijkstraSeedTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(DijkstraSeedTest, MatchesFloydWarshall) {
  Graph g = testing::MakeRandomGraph(60, 180, GetParam());
  const auto ref = AllPairs(g);
  Dijkstra dijkstra(g);
  for (NodeId s = 0; s < g.NumNodes(); s += 7) {
    dijkstra.Run(s);
    for (NodeId t = 0; t < g.NumNodes(); ++t) {
      ASSERT_EQ(dijkstra.DistTo(t), ref[s][t]) << "s=" << s << " t=" << t;
    }
  }
}

TEST_P(DijkstraSeedTest, BackwardMatchesForwardTransposed) {
  Graph g = testing::MakeRandomGraph(50, 140, GetParam() ^ 0xabc);
  Dijkstra dijkstra(g);
  const NodeId target = 3;
  dijkstra.Run(target, Direction::kBackward);
  std::vector<Dist> to_target(g.NumNodes());
  for (NodeId v = 0; v < g.NumNodes(); ++v) to_target[v] = dijkstra.DistTo(v);
  for (NodeId v = 0; v < g.NumNodes(); v += 5) {
    ASSERT_EQ(dijkstra.Distance(v, target), to_target[v]);
  }
}

TEST_P(DijkstraSeedTest, BidirectionalMatchesDijkstra) {
  Graph g = testing::MakeRandomGraph(120, 400, GetParam() ^ 0x5u);
  Dijkstra dijkstra(g);
  BidirectionalDijkstra bidir(g);
  Rng rng(GetParam());
  for (int q = 0; q < 40; ++q) {
    const NodeId s = static_cast<NodeId>(rng.Uniform(g.NumNodes()));
    const NodeId t = static_cast<NodeId>(rng.Uniform(g.NumNodes()));
    ASSERT_EQ(bidir.Distance(s, t), dijkstra.Distance(s, t))
        << "s=" << s << " t=" << t;
  }
}

TEST_P(DijkstraSeedTest, PathsAreValidAndOptimal) {
  Graph g = testing::MakeRandomGraph(80, 240, GetParam() ^ 0x77u);
  Dijkstra dijkstra(g);
  BidirectionalDijkstra bidir(g);
  Rng rng(GetParam() + 1);
  for (int q = 0; q < 25; ++q) {
    const NodeId s = static_cast<NodeId>(rng.Uniform(g.NumNodes()));
    const NodeId t = static_cast<NodeId>(rng.Uniform(g.NumNodes()));
    const Dist d = dijkstra.Distance(s, t);
    if (d == kInfDist) continue;
    auto p1 = dijkstra.Path(s, t);
    ASSERT_TRUE(IsValidPath(g, p1, s, t, d));
    auto p2 = bidir.Path(s, t);
    ASSERT_TRUE(IsValidPath(g, p2, s, t, d));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DijkstraSeedTest,
                         ::testing::Values(1, 2, 3, 42, 1234));

TEST(DijkstraTest, SelfDistanceZero) {
  Graph g = testing::MakeRandomGraph(10, 20, 9);
  Dijkstra dijkstra(g);
  EXPECT_EQ(dijkstra.Distance(4, 4), 0u);
  EXPECT_EQ(dijkstra.Path(4, 4), std::vector<NodeId>{4});
}

TEST(DijkstraTest, UnreachableIsInf) {
  GraphBuilder b(2);
  b.AddNode({0, 0});
  b.AddNode({5, 5});
  b.AddArc(0, 1, 3);
  Graph g = b.Build();
  Dijkstra dijkstra(g);
  EXPECT_EQ(dijkstra.Distance(1, 0), kInfDist);
  EXPECT_TRUE(dijkstra.Path(1, 0).empty());
}

TEST(DijkstraTest, BoundedRunStopsEarly) {
  Graph g = testing::MakeRoadGraph(16, 3);
  Dijkstra dijkstra(g);
  dijkstra.Run(0, Direction::kForward, /*bound=*/1);
  const std::size_t near = dijkstra.SettledNodes().size();
  dijkstra.Run(0);
  EXPECT_LT(near, dijkstra.SettledNodes().size());
  EXPECT_EQ(dijkstra.SettledNodes().size(), g.NumNodes());
}

TEST(DijkstraTest, SettleOrderIsNonDecreasing) {
  Graph g = testing::MakeRoadGraph(12, 8);
  Dijkstra dijkstra(g);
  dijkstra.Run(0);
  Dist prev = 0;
  for (NodeId v : dijkstra.SettledNodes()) {
    EXPECT_GE(dijkstra.DistTo(v), prev);
    prev = dijkstra.DistTo(v);
  }
}

TEST(DijkstraTest, ParentChainReachesSource) {
  Graph g = testing::MakeRoadGraph(10, 4);
  Dijkstra dijkstra(g);
  dijkstra.Run(0);
  for (NodeId v : dijkstra.SettledNodes()) {
    NodeId cur = v;
    std::size_t hops = 0;
    while (dijkstra.ParentOf(cur) != kInvalidNode) {
      cur = dijkstra.ParentOf(cur);
      ASSERT_LT(++hops, g.NumNodes() + 1);
    }
    EXPECT_EQ(cur, 0u);
  }
}

TEST(BidirectionalTest, SelfQuery) {
  Graph g = testing::MakeRandomGraph(10, 30, 2);
  BidirectionalDijkstra bidir(g);
  EXPECT_EQ(bidir.Distance(3, 3), 0u);
  EXPECT_EQ(bidir.Path(3, 3), std::vector<NodeId>{3});
}

TEST(BidirectionalTest, SettlesFewerNodesThanDijkstraOnRoadGraph) {
  Graph g = testing::MakeRoadGraph(30, 5);
  Dijkstra dijkstra(g);
  BidirectionalDijkstra bidir(g);
  const NodeId s = 0;
  const NodeId t = static_cast<NodeId>(g.NumNodes() - 1);
  dijkstra.Distance(s, t);
  bidir.Distance(s, t);
  EXPECT_LT(bidir.LastSettledCount(), dijkstra.SettledNodes().size() * 2);
}

TEST(PathTest, PathLengthComputations) {
  GraphBuilder b(3);
  b.AddNode({0, 0});
  b.AddNode({1, 0});
  b.AddNode({2, 0});
  b.AddArc(0, 1, 4);
  b.AddArc(1, 2, 6);
  Graph g = b.Build();
  EXPECT_EQ(PathLength(g, {0, 1, 2}), 10u);
  EXPECT_EQ(PathLength(g, {0, 2}), kInfDist);  // No direct arc.
  EXPECT_EQ(PathLength(g, {}), kInfDist);
  EXPECT_EQ(PathLength(g, {1}), 0u);
  EXPECT_TRUE(IsValidPath(g, {0, 1, 2}, 0, 2, 10));
  EXPECT_FALSE(IsValidPath(g, {0, 1, 2}, 0, 2, 11));
  EXPECT_FALSE(IsValidPath(g, {0, 1}, 0, 2, 4));  // Wrong endpoint.
}

TEST(PathTest, PathResultHelpers) {
  PathResult r;
  EXPECT_FALSE(r.Found());
  EXPECT_EQ(r.NumEdges(), 0u);
  r.length = 5;
  r.nodes = {1, 2, 3};
  EXPECT_TRUE(r.Found());
  EXPECT_EQ(r.NumEdges(), 2u);
}

}  // namespace
}  // namespace ah
