// Incremental (frozen-order) rebuild conformance: after weights-only churn,
// a repaired index must answer every query exactly like a from-scratch
// build of the updated graph — for one repair, for chains of repairs
// (certificate-carrying epochs), and for cert-less repairs of indexes
// loaded from disk. Also covers the witness-certificate table itself and
// the structural-mismatch guard that triggers the registry's from-scratch
// fallback.

#include <gtest/gtest.h>

#include <memory>
#include <sstream>
#include <stdexcept>
#include <vector>

#include "api/distance_oracle.h"
#include "ch/ch_index.h"
#include "core/ah_index.h"
#include "core/ah_query.h"
#include "graph/builder.h"
#include "graph/weight_update.h"
#include "hier/repair_kernel.h"
#include "hier/witness_certs.h"
#include "hl/hl_index.h"
#include "perturb/traffic_feed.h"
#include "routing/dijkstra.h"
#include "test_util.h"
#include "util/rng.h"

namespace ah {
namespace {

// Perturbs `fraction` of g's arcs (deterministically) and returns the batch.
std::vector<WeightDelta> Churn(Graph* g, double fraction, std::uint64_t seed) {
  TrafficFeedParams params;
  params.batch_fraction = fraction;
  params.seed = seed;
  TrafficFeed feed(*g, params);
  std::vector<WeightDelta> batch = feed.NextBatch();
  const DeltaApplyStats stats = ApplyWeightDeltas(g, batch);
  EXPECT_EQ(stats.rejected, 0u);
  return batch;
}

template <typename QueryA, typename QueryB>
void ExpectSameAnswers(const Graph& g, QueryA& repaired, QueryB& scratch,
                       std::uint64_t seed, int pairs = 80) {
  Dijkstra dijkstra(g);
  Rng rng(seed);
  for (int q = 0; q < pairs; ++q) {
    const NodeId s = static_cast<NodeId>(rng.Uniform(g.NumNodes()));
    const NodeId t = static_cast<NodeId>(rng.Uniform(g.NumNodes()));
    const Dist ref = dijkstra.Distance(s, t);
    ASSERT_EQ(scratch.Distance(s, t), ref) << "scratch s=" << s << " t=" << t;
    ASSERT_EQ(repaired.Distance(s, t), ref) << "repair s=" << s << " t=" << t;
  }
}

// ---------------------------------------------------------------------------
// WitnessCertTable
// ---------------------------------------------------------------------------

TEST(WitnessCertTableTest, RecordFinalizeFind) {
  WitnessCertTable table;
  const NodeId path1[] = {7, 9};
  const NodeId path2[] = {3};
  table.Record(/*v=*/5, /*u=*/1, /*w=*/2, path1, 2);
  table.Record(/*v=*/5, /*u=*/1, /*w=*/8, path2, 1);
  table.Record(/*v=*/0, /*u=*/4, /*w=*/6, nullptr, 0);  // Direct-arc witness.
  table.Finalize(/*n=*/10);

  ASSERT_EQ(table.NumCerts(), 3u);
  const WitnessCert* c = table.Find(5, 1, 2);
  ASSERT_NE(c, nullptr);
  EXPECT_EQ(c->count, 2u);
  EXPECT_EQ(table.Interior(*c)[0], 7u);
  EXPECT_EQ(table.Interior(*c)[1], 9u);
  c = table.Find(5, 1, 8);
  ASSERT_NE(c, nullptr);
  ASSERT_EQ(c->count, 1u);
  EXPECT_EQ(table.Interior(*c)[0], 3u);
  c = table.Find(0, 4, 6);
  ASSERT_NE(c, nullptr);
  EXPECT_EQ(c->count, 0u);
}

TEST(WitnessCertTableTest, FindMissesReturnNull) {
  WitnessCertTable table;
  const NodeId path[] = {2};
  table.Record(1, 0, 3, path, 1);
  table.Finalize(4);
  EXPECT_EQ(table.Find(1, 0, 2), nullptr);  // Wrong head.
  EXPECT_EQ(table.Find(1, 3, 0), nullptr);  // Reversed pair.
  EXPECT_EQ(table.Find(2, 0, 3), nullptr);  // Wrong contracted node.
  EXPECT_NE(table.Find(1, 0, 3), nullptr);
}

// ---------------------------------------------------------------------------
// CH
// ---------------------------------------------------------------------------

class IncrementalSeedTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(IncrementalSeedTest, ChRepairMatchesScratchAndDijkstra) {
  Graph g = testing::MakeRoadGraph(16, GetParam());
  const ChIndex live = ChIndex::Build(g);
  EXPECT_NE(live.witness_certs(), nullptr);  // Build records certificates.
  Churn(&g, 0.02, GetParam() ^ 0x9e37);

  const ChIndex repaired = ChIndex::RebuildWithFrozenOrder(g, live);
  const ChIndex scratch = ChIndex::Build(g);
  ChQuery rq(repaired);
  ChQuery sq(scratch);
  ExpectSameAnswers(g, rq, sq, GetParam() + 1);
}

TEST_P(IncrementalSeedTest, ChRepairIsDeterministic) {
  Graph g = testing::MakeRoadGraph(12, GetParam());
  const ChIndex live = ChIndex::Build(g);
  Churn(&g, 0.05, GetParam() + 17);

  const ChIndex a = ChIndex::RebuildWithFrozenOrder(g, live);
  const ChIndex b = ChIndex::RebuildWithFrozenOrder(g, live);
  // Compare the serialized search graphs (the full index payload);
  // ChIndex::Save additionally records build wall-clock, which is
  // legitimately different between runs.
  std::ostringstream sa, sb;
  a.search_graph().Save(sa);
  b.search_graph().Save(sb);
  EXPECT_EQ(sa.str(), sb.str());  // Bit-identical rebuilt hierarchy.
}

TEST_P(IncrementalSeedTest, ChChainedRepairsStayExact) {
  // Repair-of-repair exercises the certificates the repair kernel itself
  // emits (Build's engine-recorded table only feeds the first repair).
  Graph g = testing::MakeRoadGraph(14, GetParam());
  ChIndex live = ChIndex::Build(g);
  for (int round = 0; round < 3; ++round) {
    Churn(&g, 0.02, GetParam() + 31 * round);
    live = ChIndex::RebuildWithFrozenOrder(g, live);
    EXPECT_NE(live.witness_certs(), nullptr);
    const ChIndex scratch = ChIndex::Build(g);
    ChQuery rq(live);
    ChQuery sq(scratch);
    ExpectSameAnswers(g, rq, sq, GetParam() + round, /*pairs=*/40);
  }
}

TEST_P(IncrementalSeedTest, LoadedChRepairsCertlessAndSelfHeals) {
  Graph g = testing::MakeRoadGraph(12, GetParam());
  const ChIndex built = ChIndex::Build(g);
  std::stringstream buf;
  built.Save(buf);
  const ChIndex loaded = ChIndex::Load(buf);
  EXPECT_EQ(loaded.witness_certs(), nullptr);  // Tables are not serialized.

  Churn(&g, 0.02, GetParam() + 3);
  const ChIndex repaired = ChIndex::RebuildWithFrozenOrder(g, loaded);
  EXPECT_NE(repaired.witness_certs(), nullptr);  // Re-emitted by the repair.
  const ChIndex scratch = ChIndex::Build(g);
  ChQuery rq(repaired);
  ChQuery sq(scratch);
  ExpectSameAnswers(g, rq, sq, GetParam() + 4, /*pairs=*/40);
}

INSTANTIATE_TEST_SUITE_P(Seeds, IncrementalSeedTest,
                         ::testing::Values(1, 2, 77, 4242));

TEST(IncrementalChTest, TopologyMismatchThrows) {
  const Graph g = testing::MakeRoadGraph(10, 7);
  const ChIndex live = ChIndex::Build(g);

  // Same node count, different arc set: frozen-order repair must refuse
  // (the registry then falls back to a from-scratch build).
  GraphBuilder builder(g.NumNodes());
  for (NodeId v = 0; v < g.NumNodes(); ++v) builder.AddNode(g.Coord(v));
  for (NodeId v = 0; v < g.NumNodes(); ++v) {
    for (const Arc& a : g.OutArcs(v)) builder.AddArc(v, a.head, a.weight);
  }
  builder.AddArc(0, static_cast<NodeId>(g.NumNodes() - 1), 1);
  const Graph changed = builder.Build();
  EXPECT_THROW(ChIndex::RebuildWithFrozenOrder(changed, live),
               std::invalid_argument);

  // Node-count change is rejected before the kernel even runs.
  const Graph smaller = testing::MakeRoadGraph(9, 7);
  EXPECT_THROW(ChIndex::RebuildWithFrozenOrder(smaller, live),
               std::invalid_argument);
}

// ---------------------------------------------------------------------------
// AH and HL
// ---------------------------------------------------------------------------

TEST(IncrementalAhTest, RepairMatchesScratchAcrossChainedChurn) {
  Graph g = testing::MakeRoadGraph(12, 11);
  AhIndex live = AhIndex::Build(g);
  for (int round = 0; round < 2; ++round) {
    Churn(&g, 0.02, 100 + round);
    live = AhIndex::RebuildWithFrozenOrder(g, live);
    const AhIndex scratch = AhIndex::Build(g);
    AhQuery rq(live);
    AhQuery sq(scratch);
    ExpectSameAnswers(g, rq, sq, 200 + round, /*pairs=*/40);
  }
}

TEST(IncrementalHlTest, RelabelMatchesScratch) {
  Graph g = testing::MakeRoadGraph(12, 13);
  const HlIndex live = HlIndex::Build(g);
  Churn(&g, 0.02, 5);
  const HlIndex repaired = HlIndex::RebuildWithFrozenOrder(g, live);
  const HlIndex scratch = HlIndex::Build(g);
  Dijkstra dijkstra(g);
  Rng rng(6);
  for (int q = 0; q < 60; ++q) {
    const NodeId s = static_cast<NodeId>(rng.Uniform(g.NumNodes()));
    const NodeId t = static_cast<NodeId>(rng.Uniform(g.NumNodes()));
    const Dist ref = dijkstra.Distance(s, t);
    ASSERT_EQ(scratch.Distance(s, t), ref);
    ASSERT_EQ(repaired.Distance(s, t), ref);
  }
}

// ---------------------------------------------------------------------------
// Oracle wrappers
// ---------------------------------------------------------------------------

TEST(OracleFrozenRebuildTest, BackendsWithFrozenPathRebuildExactly) {
  Graph g = testing::MakeRoadGraph(10, 21);
  Graph base = g;  // Keep the pre-churn graph alive for the live oracles.
  for (const char* backend : {"ch", "ah", "hl"}) {
    const std::unique_ptr<DistanceOracle> live = MakeOracle(backend, base);
    Graph updated = base;
    Churn(&updated, 0.03, 77);
    const std::unique_ptr<DistanceOracle> repaired =
        live->RebuildWithFrozenOrder(updated);
    ASSERT_NE(repaired, nullptr) << backend;
    Dijkstra dijkstra(updated);
    Rng rng(78);
    auto session = repaired->NewSession();
    for (int q = 0; q < 40; ++q) {
      const NodeId s = static_cast<NodeId>(rng.Uniform(updated.NumNodes()));
      const NodeId t = static_cast<NodeId>(rng.Uniform(updated.NumNodes()));
      ASSERT_EQ(session->Distance(s, t), dijkstra.Distance(s, t))
          << backend << " s=" << s << " t=" << t;
    }
  }
}

TEST(OracleFrozenRebuildTest, BackendsWithoutFrozenPathReturnNull) {
  const Graph g = testing::MakeRoadGraph(8, 22);
  for (const char* backend : {"dijkstra", "alt"}) {
    const std::unique_ptr<DistanceOracle> live = MakeOracle(backend, g);
    EXPECT_EQ(live->RebuildWithFrozenOrder(g), nullptr) << backend;
  }
}

// ---------------------------------------------------------------------------
// Repair kernel edge cases
// ---------------------------------------------------------------------------

TEST(RepairKernelTest, ReportsCertReplaysAndEmitsTable) {
  Graph g = testing::MakeRoadGraph(12, 31);
  const ChIndex live = ChIndex::Build(g);
  Churn(&g, 0.02, 32);
  const RepairResult first = RepairContraction(
      g, live.search_graph(), ChParams{}.contraction, live.witness_certs());
  ASSERT_NE(first.certs, nullptr);
  EXPECT_GT(first.cert_replays, 0u);
  // With certificates, almost every previously-pruned pair skips its
  // witness search; without them every such pair searches.
  const RepairResult certless =
      RepairContraction(g, live.search_graph(), ChParams{}.contraction);
  EXPECT_LT(first.witness_searches, certless.witness_searches);
  EXPECT_EQ(first.arcs.size(), certless.arcs.size());
}

}  // namespace
}  // namespace ah
