// POI search — the paper's motivating scenario (§1): a user asks for nearby
// Italian restaurants; the service computes the *network* distance from the
// user's location to each candidate with distance queries, then ranks them.
//
// Euclidean proximity is a poor proxy on road networks (rivers, one-way
// systems, highway access); this example prints both rankings side by side.
//
// Build & run:  ./build/examples/poi_search
#include <algorithm>
#include <cstdio>
#include <vector>

#include "core/ah_query.h"
#include "gen/road_gen.h"
#include "hier/one_to_many.h"
#include "util/rng.h"

int main() {
  using namespace ah;

  RoadGenParams gen;
  gen.cols = gen.rows = 80;
  gen.seed = 99;
  const Graph graph = GenerateRoadNetwork(gen);
  const AhIndex index = AhIndex::Build(graph);

  // The user stands at a random intersection; 25 restaurants are scattered
  // over the map. The restaurant set is fixed, so we bucket-preprocess it
  // once (OneToMany) and answer the whole ranking with a single upward
  // search instead of 25 point-to-point queries.
  Rng rng(7);
  const NodeId user = static_cast<NodeId>(rng.Uniform(graph.NumNodes()));
  std::vector<NodeId> restaurants;
  for (int i = 0; i < 25; ++i) {
    const NodeId r = static_cast<NodeId>(rng.Uniform(graph.NumNodes()));
    if (r != user) restaurants.push_back(r);
  }
  OneToMany poi_oracle(index.search_graph(), restaurants);
  const std::vector<Dist> network_dists = poi_oracle.DistancesFrom(user);

  struct Poi {
    NodeId node;
    Dist network;
    double euclid;
  };
  std::vector<Poi> pois;
  for (std::size_t i = 0; i < restaurants.size(); ++i) {
    pois.push_back(Poi{restaurants[i], network_dists[i],
                       L2Distance(graph.Coord(user),
                                  graph.Coord(restaurants[i]))});
  }

  std::printf("user at node %u (%d, %d); %zu candidate restaurants\n\n", user,
              graph.Coord(user).x, graph.Coord(user).y, pois.size());

  // Ties broken by node id so the printed ranking is deterministic.
  std::sort(pois.begin(), pois.end(), [](const Poi& a, const Poi& b) {
    if (a.network != b.network) return a.network < b.network;
    return a.node < b.node;
  });
  std::printf("top 5 by NETWORK distance (what the service should return):\n");
  for (std::size_t i = 0; i < 5 && i < pois.size(); ++i) {
    std::printf("  #%zu node %-6u travel time %-8llu (euclid %.0f)\n", i + 1,
                pois[i].node,
                static_cast<unsigned long long>(pois[i].network),
                pois[i].euclid);
  }

  auto by_euclid = pois;
  std::sort(by_euclid.begin(), by_euclid.end(),
            [](const Poi& a, const Poi& b) {
              if (a.euclid != b.euclid) return a.euclid < b.euclid;
              return a.node < b.node;
            });
  std::printf("\ntop 5 by EUCLIDEAN distance (naive ranking):\n");
  int disagreements = 0;
  for (std::size_t i = 0; i < 5 && i < by_euclid.size(); ++i) {
    std::printf("  #%zu node %-6u euclid %-8.0f (travel time %llu)\n", i + 1,
                by_euclid[i].node, by_euclid[i].euclid,
                static_cast<unsigned long long>(by_euclid[i].network));
    if (by_euclid[i].node != pois[i].node) ++disagreements;
  }
  std::printf("\n%d of the top-5 positions differ between the rankings —\n",
              disagreements);
  std::printf("network distance queries matter, and AH answers each in\n");
  std::printf("microseconds.\n");
  return 0;
}
