// Navigation: a shortest-path query rendered as driving directions — the
// second half of the paper's motivating scenario (§1): once the user picks a
// restaurant, the service computes the actual route.
//
// The route comes from AhQuery::Path (distance query + O(k) shortcut
// unpacking); instructions are derived from the node coordinates.
//
// Build & run:  ./build/examples/navigation
#include <cmath>
#include <cstdio>

#include "core/ah_query.h"
#include "gen/road_gen.h"
#include "util/rng.h"

namespace {

const char* Heading(const ah::Point& from, const ah::Point& to) {
  const double dx = to.x - from.x;
  const double dy = to.y - from.y;
  const double angle = std::atan2(dy, dx) * 180.0 / 3.14159265358979;
  if (angle >= -22.5 && angle < 22.5) return "east";
  if (angle >= 22.5 && angle < 67.5) return "northeast";
  if (angle >= 67.5 && angle < 112.5) return "north";
  if (angle >= 112.5 && angle < 157.5) return "northwest";
  if (angle >= -67.5 && angle < -22.5) return "southeast";
  if (angle >= -112.5 && angle < -67.5) return "south";
  if (angle >= -157.5 && angle < -112.5) return "southwest";
  return "west";
}

}  // namespace

int main() {
  using namespace ah;

  RoadGenParams gen;
  gen.cols = gen.rows = 90;
  gen.seed = 4;
  const Graph graph = GenerateRoadNetwork(gen);
  const AhIndex index = AhIndex::Build(graph);
  AhQuery query(index);

  // A long trip: opposite corners of the map.
  Rng rng(12);
  NodeId s = 0, t = 0;
  for (NodeId v = 0; v < graph.NumNodes(); ++v) {
    auto corner_score = [&](NodeId x, bool far) {
      const Point& p = graph.Coord(x);
      return far ? static_cast<long long>(p.x) + p.y
                 : -(static_cast<long long>(p.x) + p.y);
    };
    if (corner_score(v, false) > corner_score(s, false)) s = v;
    if (corner_score(v, true) > corner_score(t, true)) t = v;
  }

  const PathResult route = query.Path(s, t);
  if (!route.Found()) {
    std::printf("no route from %u to %u\n", s, t);
    return 1;
  }
  std::printf("route %u -> %u: %zu road segments, total travel time %llu\n\n",
              s, t, route.NumEdges(),
              static_cast<unsigned long long>(route.length));

  // Merge consecutive segments with the same heading into one instruction.
  std::printf("directions:\n");
  std::size_t step = 1;
  std::size_t i = 0;
  Dist leg_time = 0;
  while (i + 1 < route.nodes.size()) {
    const char* heading =
        Heading(graph.Coord(route.nodes[i]), graph.Coord(route.nodes[i + 1]));
    std::size_t j = i;
    leg_time = 0;
    while (j + 1 < route.nodes.size() &&
           Heading(graph.Coord(route.nodes[j]),
                   graph.Coord(route.nodes[j + 1])) == heading) {
      leg_time += graph.ArcWeight(route.nodes[j], route.nodes[j + 1]);
      ++j;
    }
    if (step <= 12 || j + 1 >= route.nodes.size()) {
      std::printf("  %2zu. head %-9s for %zu segment%s (time %llu)\n", step,
                  heading, j - i, j - i == 1 ? "" : "s",
                  static_cast<unsigned long long>(leg_time));
    } else if (step == 13) {
      std::printf("      ...\n");
    }
    ++step;
    i = j;
  }
  std::printf("\narrived at node %u. (%zu instructions)\n", t, step - 1);
  return 0;
}
