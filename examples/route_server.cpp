// route_server: a minimal interactive query service over an AH index —
// reads queries from stdin, one per line, and answers immediately:
//
//   d <s> <t>   distance query
//   p <s> <t>   shortest path query (prints the node sequence, truncated)
//   k <s> <k>   k nearest POIs (a fixed random POI set, bucket one-to-many)
//   q           quit
//
// Usage:  route_server [dimacs-base]     (synthetic network if omitted)
// Demo:   printf 'd 0 500\np 0 500\nk 0 3\nq\n' | ./build/examples/route_server
#include <cstdio>
#include <iostream>
#include <sstream>
#include <string>

#include "core/ah_query.h"
#include "gen/road_gen.h"
#include "graph/dimacs.h"
#include "hier/one_to_many.h"
#include "util/rng.h"
#include "util/timer.h"

int main(int argc, char** argv) {
  using namespace ah;

  Graph graph;
  if (argc > 1) {
    std::printf("loading DIMACS network %s ...\n", argv[1]);
    graph = ReadDimacsFiles(argv[1]);
  } else {
    RoadGenParams gen;
    gen.cols = gen.rows = 70;
    gen.seed = 8;
    graph = GenerateRoadNetwork(gen);
  }
  std::printf("network: %zu nodes, %zu arcs\n", graph.NumNodes(),
              graph.NumArcs());

  Timer build;
  const AhIndex index = AhIndex::Build(graph);
  std::printf("AH index ready in %.2fs (%.1f MB). Commands: d|p|k|q\n",
              build.Seconds(),
              static_cast<double>(index.SizeBytes()) / (1024.0 * 1024.0));
  AhQuery query(index);

  // A fixed POI set for the k-nearest command.
  Rng rng(4);
  std::vector<NodeId> pois;
  for (int i = 0; i < 50; ++i) {
    pois.push_back(static_cast<NodeId>(rng.Uniform(graph.NumNodes())));
  }
  OneToMany poi_oracle(index.search_graph(), pois);

  std::string line;
  while (std::getline(std::cin, line)) {
    std::istringstream ls(line);
    char cmd = 0;
    ls >> cmd;
    if (cmd == 0) continue;
    if (cmd == 'q') break;
    NodeId a = 0;
    std::uint64_t b = 0;
    ls >> a >> b;
    if (!ls || a >= graph.NumNodes()) {
      std::printf("? usage: d <s> <t> | p <s> <t> | k <s> <k> | q\n");
      continue;
    }
    Timer timer;
    if (cmd == 'd') {
      if (b >= graph.NumNodes()) {
        std::printf("? node out of range\n");
        continue;
      }
      const Dist d = query.Distance(a, static_cast<NodeId>(b));
      std::printf("dist(%u, %llu) = %llu   [%.1f us]\n", a,
                  static_cast<unsigned long long>(b),
                  static_cast<unsigned long long>(d), timer.Micros());
    } else if (cmd == 'p') {
      if (b >= graph.NumNodes()) {
        std::printf("? node out of range\n");
        continue;
      }
      const PathResult p = query.Path(a, static_cast<NodeId>(b));
      if (!p.Found()) {
        std::printf("no path\n");
        continue;
      }
      std::printf("path(%u, %llu): %zu edges, length %llu   [%.1f us]\n ", a,
                  static_cast<unsigned long long>(b), p.NumEdges(),
                  static_cast<unsigned long long>(p.length), timer.Micros());
      for (std::size_t i = 0; i < p.nodes.size() && i < 12; ++i) {
        std::printf(" %u", p.nodes[i]);
      }
      if (p.nodes.size() > 12) std::printf(" ... %u", p.nodes.back());
      std::printf("\n");
    } else if (cmd == 'k') {
      const auto nearest = poi_oracle.KNearest(a, b == 0 ? 5 : b);
      std::printf("%zu nearest POIs from %u   [%.1f us]\n", nearest.size(), a,
                  timer.Micros());
      for (const auto& [node, d] : nearest) {
        std::printf("  node %-8u travel time %llu\n", node,
                    static_cast<unsigned long long>(d));
      }
    } else {
      std::printf("? unknown command '%c'\n", cmd);
    }
  }
  return 0;
}
