// route_server: a minimal interactive query service over one shared AH
// index, served through the ConcurrentEngine — the index is built once and
// immutable; every query runs on a pooled per-thread session, and batch
// commands fan out across the engine's worker threads.
//
//   d <s> <t>   distance query
//   p <s> <t>   shortest path query (prints the node sequence, truncated)
//   k <s> <k>   k nearest POIs (batch distance fan-out over a fixed POI set)
//   b <n>       n random queries answered as one batch (prints queries/sec)
//   q           quit
//
// Usage:  route_server [dimacs-base]     (synthetic network if omitted)
// Demo:   printf 'd 0 500\np 0 500\nk 0 3\nb 1000\nq\n' | ./build/examples/route_server
#include <algorithm>
#include <cstdio>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "api/concurrent_engine.h"
#include "api/distance_oracle.h"
#include "gen/road_gen.h"
#include "graph/dimacs.h"
#include "util/rng.h"
#include "util/timer.h"

int main(int argc, char** argv) {
  using namespace ah;

  Graph graph;
  if (argc > 1) {
    std::printf("loading DIMACS network %s ...\n", argv[1]);
    graph = ReadDimacsFiles(argv[1]);
  } else {
    RoadGenParams gen;
    gen.cols = gen.rows = 70;
    gen.seed = 8;
    graph = GenerateRoadNetwork(gen);
  }
  std::printf("network: %zu nodes, %zu arcs\n", graph.NumNodes(),
              graph.NumArcs());

  Timer build;
  ConcurrentEngine engine(MakeOracle("ah", graph));
  std::printf(
      "AH index ready in %.2fs (%.1f MB), serving %zu worker threads. "
      "Commands: d|p|k|b|q\n",
      build.Seconds(),
      static_cast<double>(engine.oracle().BuildStats().index_bytes) /
          (1024.0 * 1024.0),
      engine.NumThreads());

  // A fixed POI set for the k-nearest command.
  Rng rng(4);
  std::vector<NodeId> pois;
  for (int i = 0; i < 50; ++i) {
    pois.push_back(static_cast<NodeId>(rng.Uniform(graph.NumNodes())));
  }

  std::string line;
  while (std::getline(std::cin, line)) {
    std::istringstream ls(line);
    char cmd = 0;
    ls >> cmd;
    if (cmd == 0) continue;
    if (cmd == 'q') break;
    NodeId a = 0;
    std::uint64_t b = 0;
    ls >> a;
    if (cmd != 'b') ls >> b;
    if (!ls || (cmd != 'b' && a >= graph.NumNodes())) {
      std::printf("? usage: d <s> <t> | p <s> <t> | k <s> <k> | b <n> | q\n");
      continue;
    }
    Timer timer;
    if (cmd == 'd') {
      if (b >= graph.NumNodes()) {
        std::printf("? node out of range\n");
        continue;
      }
      const Dist d = engine.Distance(a, static_cast<NodeId>(b));
      std::printf("dist(%u, %llu) = %llu   [%.1f us]\n", a,
                  static_cast<unsigned long long>(b),
                  static_cast<unsigned long long>(d), timer.Micros());
    } else if (cmd == 'p') {
      if (b >= graph.NumNodes()) {
        std::printf("? node out of range\n");
        continue;
      }
      const PathResult p = engine.ShortestPath(a, static_cast<NodeId>(b));
      if (!p.Found()) {
        std::printf("no path\n");
        continue;
      }
      std::printf("path(%u, %llu): %zu edges, length %llu   [%.1f us]\n ", a,
                  static_cast<unsigned long long>(b), p.NumEdges(),
                  static_cast<unsigned long long>(p.length), timer.Micros());
      for (std::size_t i = 0; i < p.nodes.size() && i < 12; ++i) {
        std::printf(" %u", p.nodes[i]);
      }
      if (p.nodes.size() > 12) std::printf(" ... %u", p.nodes.back());
      std::printf("\n");
    } else if (cmd == 'k') {
      // k nearest POIs = one batch of |POI| distance queries fanned across
      // the engine's threads, then a partial sort of the reachable ones.
      std::vector<QueryPair> queries;
      queries.reserve(pois.size());
      for (const NodeId poi : pois) queries.emplace_back(a, poi);
      const std::vector<Dist> dists = engine.BatchDistance(queries);
      std::vector<std::pair<Dist, NodeId>> reachable;
      for (std::size_t i = 0; i < pois.size(); ++i) {
        if (dists[i] != kInfDist) reachable.emplace_back(dists[i], pois[i]);
      }
      const std::size_t k = std::min<std::size_t>(b == 0 ? 5 : b,
                                                  reachable.size());
      std::partial_sort(reachable.begin(), reachable.begin() + k,
                        reachable.end());
      std::printf("%zu nearest POIs from %u   [%.1f us]\n", k, a,
                  timer.Micros());
      for (std::size_t i = 0; i < k; ++i) {
        std::printf("  node %-8u travel time %llu\n", reachable[i].second,
                    static_cast<unsigned long long>(reachable[i].first));
      }
    } else if (cmd == 'b') {
      constexpr std::size_t kMaxBatch = 1000000;
      if (a == 0 || a > kMaxBatch) {
        std::printf("? usage: b <n> with 0 < n <= %zu\n", kMaxBatch);
        continue;
      }
      const std::size_t count = a;
      Rng batch_rng(count);
      std::vector<QueryPair> queries;
      queries.reserve(count);
      for (std::size_t i = 0; i < count; ++i) {
        queries.emplace_back(
            static_cast<NodeId>(batch_rng.Uniform(graph.NumNodes())),
            static_cast<NodeId>(batch_rng.Uniform(graph.NumNodes())));
      }
      timer.Restart();
      const std::vector<Dist> dists = engine.BatchDistance(queries);
      const double seconds = timer.Seconds();
      Dist checksum = 0;
      std::size_t unreachable = 0;
      for (const Dist d : dists) {
        if (d == kInfDist) {
          ++unreachable;
        } else {
          checksum += d;
        }
      }
      std::printf(
          "batch of %zu queries on %zu threads: %.1f ms, %.0f queries/s "
          "(%zu unreachable, checksum %llu)\n",
          count, engine.NumThreads(), seconds * 1e3,
          seconds > 0 ? static_cast<double>(count) / seconds : 0.0,
          unreachable, static_cast<unsigned long long>(checksum));
    } else {
      std::printf("? unknown command '%c'\n", cmd);
    }
  }
  return 0;
}
