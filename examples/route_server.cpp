// route_server: the serving stack behind a real front-end. The index is
// built once into a ServerStack (src/server/) — protocol parsing, sharded
// LRU result cache, admission control, and request stats — and served
// either to stdin (REPL mode, the default) or over TCP (--listen).
//
// Protocol (see src/server/protocol.h; same grammar on stdin and TCP):
//   d <s> <t>                       distance
//   p <s> <t>                       shortest path
//   k <s> <k>                       k nearest POIs
//   b <n> <s1> <t1> ...             batch of n distance queries
//   stats | inv | q                 stats / cache invalidation / quit
// REPL extra (client-side convenience, not part of the protocol):
//   bench <n>                       n random queries as one batch, prints QPS
//
// Usage:
//   route_server [dimacs-base] [--backend <name>] [--listen <port>]
//                [--cache <entries>] [--admission <n>] [--timeout-ms <n>]
//   route_server --smoke    # self-test: TCP round-trip on an ephemeral port
//
// Demo:
//   printf 'd 0 500\np 0 500\nk 0 3\nbench 1000\nstats\nq\n' |
//       ./build/examples/route_server
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "api/distance_oracle.h"
#include "gen/road_gen.h"
#include "graph/dimacs.h"
#include "routing/dijkstra.h"
#include "server/line_client.h"
#include "server/protocol.h"
#include "server/server_stack.h"
#include "server/tcp_server.h"
#include "util/rng.h"
#include "util/timer.h"

namespace {

using namespace ah;
using namespace ah::server;

std::vector<NodeId> MakePois(const Graph& graph, std::size_t count,
                             std::uint64_t seed) {
  Rng rng(seed);
  std::vector<NodeId> pois;
  pois.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    pois.push_back(static_cast<NodeId>(rng.Uniform(graph.NumNodes())));
  }
  return pois;
}

// REPL convenience: `bench <n>` issues n random queries as one protocol
// batch request and reports client-observed throughput.
void RunBenchCommand(ServerStack& stack, std::size_t count) {
  constexpr std::size_t kMaxBench = 1000000;
  if (count == 0 || count > kMaxBench) {
    std::printf("? usage: bench <n> with 0 < n <= %zu\n", kMaxBench);
    return;
  }
  const std::size_t num_nodes = stack.graph().NumNodes();
  const std::size_t max_batch = stack.config().max_batch;
  Rng rng(count);
  Timer timer;
  std::size_t remaining = count;
  std::size_t errors = 0;
  while (remaining > 0) {
    const std::size_t chunk = std::min(remaining, max_batch);
    std::string line = "b " + std::to_string(chunk);
    for (std::size_t i = 0; i < chunk; ++i) {
      line += ' ';
      line += std::to_string(rng.Uniform(num_nodes));
      line += ' ';
      line += std::to_string(rng.Uniform(num_nodes));
    }
    if (stack.HandleLine(line).rfind("OK b ", 0) != 0) ++errors;
    remaining -= chunk;
  }
  const double seconds = timer.Seconds();
  std::printf("bench: %zu queries in %.1f ms, %.0f queries/s (%zu errors)\n",
              count, seconds * 1e3,
              seconds > 0 ? static_cast<double>(count) / seconds : 0.0,
              errors);
}

void ReplLoop(ServerStack& stack) {
  std::string line;
  while (std::getline(std::cin, line)) {
    if (line.rfind("bench", 0) == 0) {
      const std::size_t n =
          static_cast<std::size_t>(std::strtoull(line.c_str() + 5, nullptr, 10));
      RunBenchCommand(stack, n);
      continue;
    }
    bool close = false;
    const std::string reply = stack.HandleLine(line, &close);
    std::printf("%s\n", reply.c_str());
    if (close) break;
  }
}

// ---------------------------------------------------------------------------
// --smoke: end-to-end self-test over a real loopback socket. Starts the TCP
// server on an ephemeral port, runs a scripted request batch (valid,
// malformed, cached, versioned), and cross-checks replies against a
// Dijkstra reference. Exit code 0 iff every check passes.
// ---------------------------------------------------------------------------

#define SMOKE_CHECK(cond, what)                                  \
  do {                                                           \
    if (!(cond)) {                                               \
      std::printf("SMOKE FAIL: %s (%s:%d)\n", what, __FILE__, __LINE__); \
      return 1;                                                  \
    }                                                            \
  } while (0)

int RunSmoke(const std::string& backend) {
  RoadGenParams gen;
  gen.cols = gen.rows = 12;
  gen.seed = 8;
  const Graph graph = GenerateRoadNetwork(gen);
  Dijkstra reference(graph);

  ServerConfig config;
  config.cache_capacity = 1024;
  config.admission_capacity = 16;
  ServerStack stack(MakeOracle(backend, graph), config);
  stack.SetPois(MakePois(graph, 20, 4));

  TcpServer tcp(stack, TcpServerConfig{});
  std::string error;
  SMOKE_CHECK(tcp.Start(&error), error.c_str());
  std::printf("smoke: %s on 127.0.0.1:%u over %zu nodes\n", backend.c_str(),
              tcp.Port(), graph.NumNodes());

  LineClient client;
  SMOKE_CHECK(client.Connect(tcp.Port()), "connect");
  std::string line;
  SMOKE_CHECK(client.ReadLine(&line), "read greeting");
  SMOKE_CHECK(line.rfind("AH/1 ready ", 0) == 0, "greeting banner");

  const NodeId far = static_cast<NodeId>(graph.NumNodes() - 1);
  const Dist expected = reference.Distance(0, far);
  const std::string dist_query = "d 0 " + std::to_string(far);

  struct Step {
    std::string request;
    std::string expect;  // exact reply, or prefix when ends with '*'
  };
  const std::vector<Step> steps = {
      // Valid traffic, cross-checked against the Dijkstra reference.
      {dist_query, FormatDistance(expected)},
      {"AH/1 " + dist_query, FormatDistance(expected)},  // versioned form
      {"p 0 " + std::to_string(far), "OK p " + std::to_string(expected) + " *"},
      {"k 0 3", "OK k 3 *"},
      {"b 2 0 " + std::to_string(far) + " " + std::to_string(far) + " 0",
       "OK b 2 *"},
      // Repeat: must now be a cache hit, bit-identical reply.
      {dist_query, FormatDistance(expected)},
      // Malformed traffic: structured errors, not clamping or hangs.
      {"d 0", "ERR bad-request*"},
      {"d -1 5", "ERR bad-node*"},
      {"d 0 " + std::to_string(graph.NumNodes()), "ERR bad-node*"},
      {"AH/9 d 0 1", "ERR unsupported-version*"},
      {"fly 0 1", "ERR bad-request*"},
      {"", "ERR bad-request*"},
      // Cache invalidation then stats.
      {"inv", "OK inv"},
      {"stats", "OK stats *"},
  };
  for (const Step& step : steps) {
    SMOKE_CHECK(client.SendLine(step.request), "send");
    SMOKE_CHECK(client.ReadLine(&line), "read reply");
    const bool prefix = !step.expect.empty() && step.expect.back() == '*';
    const std::string want =
        prefix ? step.expect.substr(0, step.expect.size() - 1) : step.expect;
    const bool match = prefix ? line.rfind(want, 0) == 0 : line == want;
    if (!match) {
      std::printf("SMOKE FAIL: request '%s'\n  want %s'%s'\n  got  '%s'\n",
                  step.request.c_str(), prefix ? "prefix " : "", want.c_str(),
                  line.c_str());
      return 1;
    }
  }

  // The repeated distance query must have hit the cache.
  const CacheStats cache = stack.cache().Totals();
  SMOKE_CHECK(cache.hits > 0, "expected cache hits");
  SMOKE_CHECK(cache.invalidations == 1, "expected one invalidation");

  SMOKE_CHECK(client.SendLine("q"), "send quit");
  SMOKE_CHECK(client.ReadLine(&line), "read bye");
  SMOKE_CHECK(line == "OK bye", "quit reply");
  SMOKE_CHECK(client.AtEof(), "server closes after quit");

  tcp.Stop();
  std::printf("smoke: all %zu scripted replies correct, %llu cache hits\n",
              steps.size(), static_cast<unsigned long long>(cache.hits));
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::string dimacs_base;
  std::string backend = "ah";
  bool smoke = false;
  bool listen = false;
  std::uint16_t port = 0;
  ServerConfig config;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next_value = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s needs a value\n", flag);
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--smoke") {
      smoke = true;
    } else if (arg == "--backend") {
      backend = next_value("--backend");
    } else if (arg == "--listen") {
      listen = true;
      port = static_cast<std::uint16_t>(
          std::strtoul(next_value("--listen"), nullptr, 10));
    } else if (arg == "--cache") {
      config.cache_capacity = static_cast<std::size_t>(
          std::strtoull(next_value("--cache"), nullptr, 10));
    } else if (arg == "--admission") {
      config.admission_capacity = static_cast<std::size_t>(
          std::strtoull(next_value("--admission"), nullptr, 10));
    } else if (arg == "--timeout-ms") {
      config.request_timeout = std::chrono::milliseconds(
          std::strtoull(next_value("--timeout-ms"), nullptr, 10));
    } else if (!arg.empty() && arg[0] == '-') {
      std::fprintf(stderr, "unknown flag %s\n", arg.c_str());
      return 2;
    } else {
      dimacs_base = arg;
    }
  }

  if (smoke) return RunSmoke(backend);

  Graph graph;
  if (!dimacs_base.empty()) {
    std::printf("loading DIMACS network %s ...\n", dimacs_base.c_str());
    graph = ReadDimacsFiles(dimacs_base);
  } else {
    RoadGenParams gen;
    gen.cols = gen.rows = 70;
    gen.seed = 8;
    graph = GenerateRoadNetwork(gen);
  }
  std::printf("network: %zu nodes, %zu arcs\n", graph.NumNodes(),
              graph.NumArcs());

  Timer build;
  ServerStack stack(MakeOracle(backend, graph), config);
  stack.SetPois(MakePois(graph, 50, 4));
  std::printf(
      "%s index ready in %.2fs (%.1f MB); cache %zu entries, admission %zu "
      "in flight, %lld ms deadline\n",
      backend.c_str(), build.Seconds(),
      static_cast<double>(stack.engine().oracle().BuildStats().index_bytes) /
          (1024.0 * 1024.0),
      config.cache_capacity, config.admission_capacity,
      static_cast<long long>(config.request_timeout.count()));

  if (listen) {
    TcpServerConfig tcp_config;
    tcp_config.port = port;
    TcpServer tcp(stack, tcp_config);
    std::string error;
    if (!tcp.Start(&error)) {
      std::fprintf(stderr, "cannot listen: %s\n", error.c_str());
      return 1;
    }
    std::printf(
        "listening on 127.0.0.1:%u — try: printf 'd 0 500\\nq\\n' | nc "
        "127.0.0.1 %u\nREPL still active on stdin; 'q' or EOF stops the "
        "server.\n",
        tcp.Port(), tcp.Port());
    ReplLoop(stack);
    tcp.Stop();
    return 0;
  }

  std::printf("commands: d|p|k|b|stats|inv|q (protocol), bench <n> (REPL)\n");
  ReplLoop(stack);
  return 0;
}
