// route_server: the serving stack behind a real front-end. The configured
// backends are built once into an epoch-versioned IndexRegistry served
// through a ServerStack (src/server/) — protocol parsing, generation-tagged
// LRU result cache, admission control, and request stats — either to stdin
// (REPL mode, the default) or over TCP (--listen).
//
// Protocol (see src/server/protocol.h; same grammar on stdin and TCP):
//   [@<backend>] d <s> <t>          distance (on a named backend, or default)
//   [@<backend>] p <s> <t>          shortest path
//   [@<backend>] k <s> <k>          k nearest POIs
//   [@<backend>] b <n> <s1> <t1>... batch of n distance queries
//   [@<backend>] m <ns> <nt> <s...> <t...>   ns x nt distance matrix
//   use <backend>                   switch the server default backend
//   upd <u> <v> <w>                 queue weight w for arc u->v
//   reload                          rebuild + hot-swap all backends (async)
//   stats | inv | q                 stats / cache clear / quit
// REPL extras (client-side convenience, not part of the protocol):
//   bench <n>                       n random queries as one batch, prints QPS
//   wait                            block until a pending rebuild finishes
//
// Usage:
//   route_server [dimacs-base] [--backends ch,alt,...] [--listen <port>]
//                [--protocol v1|v2] [--cache <entries>] [--cache-ttl-ms <n>]
//                [--admission <n>] [--admission-per-client <n>]
//                [--timeout-ms <n>] [--matrix-max-locations <n>]
//                [--rebuild-policy frozen|scratch]
//                [--min-reload-interval-ms <n>]
//   route_server --smoke    # self-test: TCP round-trip + live-reload swap
//                           # + a v2 binary session cross-checked against v1
//
// --protocol v2 routes every REPL line through the v2 binary codec — the
// line is parsed, encoded as a request frame, decoded server-side, executed
// on the same stack, and the reply frame rendered back to the v1 text — so
// operators can eyeball binary-protocol behavior without a binary client.
//
// Demo:
//   printf 'd 0 500\nupd 0 1 9\nreload\nwait\nd 0 500\nq\n' |
//       ./build/examples/route_server --backends ch,alt
#include <condition_variable>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "api/distance_oracle.h"
#include "api/index_registry.h"
#include "gen/road_gen.h"
#include "graph/dimacs.h"
#include "routing/dijkstra.h"
#include "server/binary_protocol.h"
#include "server/line_client.h"
#include "server/protocol.h"
#include "server/server_stack.h"
#include "server/tcp_server.h"
#include "util/rng.h"
#include "util/timer.h"

namespace {

using namespace ah;
using namespace ah::server;

std::vector<NodeId> MakePois(std::size_t num_nodes, std::size_t count,
                             std::uint64_t seed) {
  Rng rng(seed);
  std::vector<NodeId> pois;
  pois.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    pois.push_back(static_cast<NodeId>(rng.Uniform(num_nodes)));
  }
  return pois;
}

std::vector<std::string> SplitCsv(const std::string& csv) {
  std::vector<std::string> out;
  std::size_t begin = 0;
  while (begin <= csv.size()) {
    const std::size_t comma = csv.find(',', begin);
    const std::size_t end = comma == std::string::npos ? csv.size() : comma;
    if (end > begin) out.push_back(csv.substr(begin, end - begin));
    if (comma == std::string::npos) break;
    begin = comma + 1;
  }
  return out;
}

// REPL convenience: `bench <n>` issues n random queries as one protocol
// batch request and reports client-observed throughput.
void RunBenchCommand(ServerStack& stack, std::size_t count) {
  constexpr std::size_t kMaxBench = 1000000;
  if (count == 0 || count > kMaxBench) {
    std::printf("? usage: bench <n> with 0 < n <= %zu\n", kMaxBench);
    return;
  }
  const std::size_t num_nodes = stack.NumNodes();
  const std::size_t max_batch = stack.config().max_batch;
  Rng rng(count);
  Timer timer;
  std::size_t remaining = count;
  std::size_t errors = 0;
  while (remaining > 0) {
    const std::size_t chunk = std::min(remaining, max_batch);
    std::string line = "b " + std::to_string(chunk);
    for (std::size_t i = 0; i < chunk; ++i) {
      line += ' ';
      line += std::to_string(rng.Uniform(num_nodes));
      line += ' ';
      line += std::to_string(rng.Uniform(num_nodes));
    }
    if (stack.HandleLine(line).rfind("OK b ", 0) != 0) ++errors;
    remaining -= chunk;
  }
  const double seconds = timer.Seconds();
  std::printf("bench: %zu queries in %.1f ms, %.0f queries/s (%zu errors)\n",
              count, seconds * 1e3,
              seconds > 0 ? static_cast<double>(count) / seconds : 0.0,
              errors);
}

// One REPL line over the v2 wire codec: parse, encode a request frame,
// decode it server-side (the same entry TCP v2 connections use), execute,
// encode the reply frame, and render it back to v1 text. Exercises the
// full binary round trip in-process.
std::string HandleLineV2(ServerStack& stack, std::string_view line,
                         std::uint64_t request_id, bool* close) {
  ParseResult parsed = ParseRequest(line, stack.Limits());
  Opcode opcode = Opcode::kQuit;
  if (parsed.ok) {
    opcode = OpcodeForKind(parsed.request.kind);
    const std::string frame = EncodeRequestFrame(
        opcode, request_id, parsed.request.backend,
        EncodeRequestBody(parsed.request));
    FrameHeader header;
    std::string_view payload;
    if (TryReadFrame(frame, &header, &payload) != frame.size()) {
      return FormatError(ErrorCode::kInternal, "request frame round trip");
    }
    parsed = DecodeRequest(header, payload, stack.Limits());
  }

  // SubmitDecoded answers on an engine worker for index-bound requests;
  // block here like HandleLine does for the text path.
  std::mutex mu;
  std::condition_variable cv;
  bool done = false;
  Reply reply;
  stack.SubmitDecoded(std::move(parsed), 0, [&](Reply r) {
    std::lock_guard<std::mutex> lock(mu);
    reply = std::move(r);
    done = true;
    cv.notify_one();
  });
  {
    std::unique_lock<std::mutex> lock(mu);
    cv.wait(lock, [&] { return done; });
  }
  if (close != nullptr) *close = reply.close;

  const std::string frame = EncodeReplyFrame(reply, opcode, request_id);
  FrameHeader header;
  std::string_view payload;
  if (TryReadFrame(frame, &header, &payload) != frame.size()) {
    return FormatError(ErrorCode::kInternal, "reply frame round trip");
  }
  return ReplyFrameToText(header, payload);
}

void ReplLoop(ServerStack& stack, bool v2) {
  std::string line;
  std::uint64_t next_id = 0;
  while (std::getline(std::cin, line)) {
    if (line.rfind("bench", 0) == 0) {
      const std::size_t n =
          static_cast<std::size_t>(std::strtoull(line.c_str() + 5, nullptr, 10));
      RunBenchCommand(stack, n);
      continue;
    }
    if (line == "wait") {
      Timer timer;
      stack.registry().WaitForRebuild();
      std::printf("rebuild idle after %.1f ms\n", timer.Seconds() * 1e3);
      continue;
    }
    bool close = false;
    const std::string reply = v2 ? HandleLineV2(stack, line, ++next_id, &close)
                                 : stack.HandleLine(line, &close);
    std::printf("%s\n", reply.c_str());
    if (close) break;
  }
}

// ---------------------------------------------------------------------------
// --smoke: end-to-end self-test over a real loopback socket. Starts a
// two-backend registry behind the TCP server on an ephemeral port, runs a
// scripted request batch (valid, malformed, cached, versioned,
// backend-prefixed), then drives a live weight update through
// upd/reload — continuous correctness is cross-checked against Dijkstra
// references built on the original and the updated graph, and the swap must
// retire cache entries by generation, not via Clear(). Exit code 0 iff
// every check passes.
// ---------------------------------------------------------------------------

#define SMOKE_CHECK(cond, what)                                  \
  do {                                                           \
    if (!(cond)) {                                               \
      std::printf("SMOKE FAIL: %s (%s:%d)\n", what, __FILE__, __LINE__); \
      return 1;                                                  \
    }                                                            \
  } while (0)

int RunSmoke(const std::vector<std::string>& backends) {
  RoadGenParams gen;
  gen.cols = gen.rows = 12;
  gen.seed = 8;
  const Graph graph = GenerateRoadNetwork(gen);
  Dijkstra reference(graph);

  ServerConfig config;
  config.cache_capacity = 1024;
  config.admission_capacity = 16;
  // Tiny matrix cap so the smoke exercises the too-large policy reply.
  config.max_matrix_locations = 4;
  std::shared_ptr<IndexRegistry> registry;
  try {
    registry = std::make_shared<IndexRegistry>(graph, backends);
  } catch (const std::exception& e) {
    std::printf("SMOKE FAIL: %s\n", e.what());
    return 1;
  }
  ServerStack stack(registry, config);
  stack.SetPois(MakePois(graph.NumNodes(), 20, 4));

  TcpServer tcp(stack, TcpServerConfig{});
  std::string error;
  SMOKE_CHECK(tcp.Start(&error), error.c_str());
  std::printf("smoke: %zu backend(s), default %s, on 127.0.0.1:%u over %zu "
              "nodes\n",
              backends.size(), registry->DefaultBackend().c_str(), tcp.Port(),
              graph.NumNodes());

  LineClient client;
  SMOKE_CHECK(client.Connect(tcp.Port()), "connect");
  std::string line;
  SMOKE_CHECK(client.ReadLine(&line), "read greeting");
  SMOKE_CHECK(line.rfind("AH/1 ready ", 0) == 0, "greeting banner");

  const NodeId far = static_cast<NodeId>(graph.NumNodes() - 1);
  const Dist expected = reference.Distance(0, far);
  const std::string dist_query = "d 0 " + std::to_string(far);
  const std::string second = backends.size() > 1 ? backends[1] : backends[0];

  // A 2x2 matrix over {0, mid} x {far, mid}, checked cell by cell against
  // the Dijkstra reference (row-major by source).
  const NodeId mid = static_cast<NodeId>(graph.NumNodes() / 2);
  const std::string matrix_query = "m 2 2 0 " + std::to_string(mid) + " " +
                                   std::to_string(far) + " " +
                                   std::to_string(mid);
  auto matrix_reply = [&](Dijkstra& dij) {
    return FormatMatrix(2, 2,
                        {dij.Distance(0, far), dij.Distance(0, mid),
                         dij.Distance(mid, far), dij.Distance(mid, mid)});
  };

  struct Step {
    std::string request;
    std::string expect;  // exact reply, or prefix when ends with '*'
  };
  const std::vector<Step> steps = {
      // Valid traffic, cross-checked against the Dijkstra reference.
      {dist_query, FormatDistance(expected)},
      {"AH/1 " + dist_query, FormatDistance(expected)},  // versioned form
      // Every configured backend answers identically via the @ prefix.
      {"@" + backends.front() + " " + dist_query, FormatDistance(expected)},
      {"@" + second + " " + dist_query, FormatDistance(expected)},
      {"p 0 " + std::to_string(far), "OK p " + std::to_string(expected) + " *"},
      {"k 0 3", "OK k 3 *"},
      {"b 2 0 " + std::to_string(far) + " " + std::to_string(far) + " 0",
       "OK b 2 *"},
      // Many-to-many matrix: exact cells on the default and on a named
      // backend; a repeat must be answered from per-pair cache entries.
      {matrix_query, matrix_reply(reference)},
      {"@" + second + " " + matrix_query, matrix_reply(reference)},
      {matrix_query, matrix_reply(reference)},
      // Repeat: must now be a cache hit, bit-identical reply.
      {dist_query, FormatDistance(expected)},
      // Admin: switch the default backend and back.
      {"use " + second, "OK use " + second},
      {dist_query, FormatDistance(expected)},
      {"use " + backends.front(), "OK use " + backends.front()},
      // Malformed traffic: structured errors, not clamping or hangs.
      {"d 0", "ERR bad-request*"},
      {"d -1 5", "ERR bad-node*"},
      {"d 0 " + std::to_string(graph.NumNodes()), "ERR bad-node*"},
      {"AH/9 d 0 1", "ERR unsupported-version*"},
      {"fly 0 1", "ERR bad-request*"},
      {"", "ERR bad-request*"},
      {"@nosuch d 0 1", "ERR bad-backend*"},
      {"use nosuch", "ERR bad-backend*"},
      {"upd 0 0 7", "ERR bad-arc*"},          // no self-loop in the network
      {"upd 0 1 0", "ERR bad-request*"},      // zero weight
      {"upd 0 999999 5", "ERR bad-node*"},
      {"@" + second + " reload", "ERR bad-request*"},  // selector misuse
      // Matrix policy + validation errors.
      {"m 5 1 0 1 2 3 4 5", "ERR too-large*"},   // side over the cap of 4
      {"m 2 2 0 1 2", "ERR bad-request*"},       // wrong token count
      {"m 0 2 1 2", "ERR bad-request*"},         // zero-sized side
      {"m 2 2 0 1 2 999999", "ERR bad-node*"},   // node out of range
      // Cache invalidation then stats.
      {"inv", "OK inv"},
      {"stats", "OK stats *"},
  };
  auto run_steps = [&](const std::vector<Step>& script) -> bool {
    for (const Step& step : script) {
      if (!client.SendLine(step.request)) return false;
      if (!client.ReadLine(&line)) return false;
      const bool prefix = !step.expect.empty() && step.expect.back() == '*';
      const std::string want =
          prefix ? step.expect.substr(0, step.expect.size() - 1) : step.expect;
      const bool match = prefix ? line.rfind(want, 0) == 0 : line == want;
      if (!match) {
        std::printf("SMOKE FAIL: request '%s'\n  want %s'%s'\n  got  '%s'\n",
                    step.request.c_str(), prefix ? "prefix " : "",
                    want.c_str(), line.c_str());
        return false;
      }
    }
    return true;
  };
  SMOKE_CHECK(run_steps(steps), "scripted request batch");

  // The repeated distance query must have hit the cache; `inv` counts as a
  // clear (generation invalidations come later, from the swap).
  CacheStats cache = stack.cache().Totals();
  SMOKE_CHECK(cache.hits > 0, "expected cache hits");
  SMOKE_CHECK(cache.clears == 1, "expected one cache clear");
  SMOKE_CHECK(cache.invalidations == 0, "no generation drops before swap");

  // ---- Live weight update + zero-downtime hot swap ----------------------
  // Make the first arc out of node 0 drastically heavier, reload, and wait
  // for the background rebuild to swap every backend. Replies before the
  // swap match the old Dijkstra, after it the updated one; the stale cache
  // entry for dist_query must be retired by its generation tag (no Clear).
  SMOKE_CHECK(graph.OutArcs(0).size() > 0, "node 0 has an out-arc");
  const NodeId via = graph.OutArcs(0)[0].head;
  const Weight new_weight =
      static_cast<Weight>(graph.OutArcs(0)[0].weight * 1000 + 1);
  Graph updated = graph;
  updated.SetArcWeight(0, via, new_weight);
  Dijkstra updated_reference(updated);
  const Dist updated_expected = updated_reference.Distance(0, far);

  // Warm the cache with the pre-swap answer so the swap has something to
  // invalidate by generation.
  SMOKE_CHECK(run_steps({{dist_query, FormatDistance(expected)}}),
              "pre-swap query");
  const std::string upd_request = "upd 0 " + std::to_string(via) + " " +
                                  std::to_string(new_weight);
  SMOKE_CHECK(run_steps({{upd_request, "OK upd 1"}, {"reload", "OK reload 1"}}),
              "queue update + reload");
  registry->WaitForRebuild();
  for (const std::string& backend : backends) {
    SMOKE_CHECK(registry->Generation(backend) == 2, "generation bumped to 2");
  }
  // Same query, every backend: now the updated answer — the old epoch's
  // cached entries (point and matrix alike) must not leak through.
  SMOKE_CHECK(run_steps({{dist_query, FormatDistance(updated_expected)},
                         {"@" + second + " " + dist_query,
                          FormatDistance(updated_expected)},
                         {matrix_query, matrix_reply(updated_reference)}}),
              "post-swap queries");
  cache = stack.cache().Totals();
  SMOKE_CHECK(cache.invalidations >= 1, "swap retired stale entry by tag");
  SMOKE_CHECK(cache.clears == 1, "swap did not Clear() the cache");
  SMOKE_CHECK(stack.registry().GetStats().updates_applied == 1,
              "one update applied");

  // ---- v2 binary session ------------------------------------------------
  // Negotiate on the same port, then replay a query mix (point, batch,
  // matrix, named backend, k-nearest, path) over both connections: every v2
  // reply frame must render to exactly the text the v1 connection returns
  // for the same request. stats is prefix-checked — its counters advance
  // between the two requests by design.
  BinaryClient v2;
  SMOKE_CHECK(v2.Connect(tcp.Port()), "v2 connect + hello");
  SMOKE_CHECK(v2.nodes() == graph.NumNodes(), "hello node count");
  SMOKE_CHECK(v2.arcs() == graph.NumArcs(), "hello arc count");
  const std::vector<std::string> v2_queries = {
      dist_query,
      "@" + second + " " + dist_query,
      "b 3 0 " + std::to_string(far) + " " + std::to_string(far) + " 0 " +
          std::to_string(mid) + " " + std::to_string(mid),
      matrix_query,
      "@" + second + " " + matrix_query,
      "p 0 " + std::to_string(far),
      "k 0 3",
  };
  for (const std::string& query : v2_queries) {
    SMOKE_CHECK(client.SendLine(query), "v1 send");
    SMOKE_CHECK(client.ReadLine(&line), "v1 reply");
    const ParseResult parsed = ParseRequest(query, stack.Limits());
    SMOKE_CHECK(parsed.ok, "v2 parse");
    const std::uint64_t id =
        v2.SendRequest(OpcodeForKind(parsed.request.kind),
                       EncodeRequestBody(parsed.request),
                       parsed.request.backend);
    SMOKE_CHECK(id != 0, "v2 send");
    BinaryClient::Frame frame;
    SMOKE_CHECK(v2.ReadReplyFor(id, &frame), "v2 reply");
    if (ReplyFrameToText(frame.header, frame.payload) != line) {
      std::printf("SMOKE FAIL: v2 reply diverges on '%s'\n  v1 '%s'\n  v2 "
                  "'%s'\n",
                  query.c_str(), line.c_str(),
                  ReplyFrameToText(frame.header, frame.payload).c_str());
      return 1;
    }
  }
  {
    const std::uint64_t id = v2.SendRequest(Opcode::kStats, {});
    BinaryClient::Frame frame;
    SMOKE_CHECK(v2.ReadReplyFor(id, &frame), "v2 stats reply");
    SMOKE_CHECK(frame.header.status == kStatusOk, "v2 stats ok");
    const std::string text = ReplyFrameToText(frame.header, frame.payload);
    SMOKE_CHECK(text.rfind("OK stats ", 0) == 0, "v2 stats render");
    SMOKE_CHECK(text.find("v2_requests=") != std::string::npos,
                "stats counts v2 requests");
    const std::uint64_t quit_id = v2.SendRequest(Opcode::kQuit, {});
    SMOKE_CHECK(v2.ReadReplyFor(quit_id, &frame), "v2 quit reply");
    SMOKE_CHECK(frame.header.status == kStatusOk, "v2 quit ok");
    SMOKE_CHECK(v2.AtEof(), "server closes v2 session after quit");
  }

  SMOKE_CHECK(client.SendLine("q"), "send quit");
  SMOKE_CHECK(client.ReadLine(&line), "read bye");
  SMOKE_CHECK(line == "OK bye", "quit reply");
  SMOKE_CHECK(client.AtEof(), "server closes after quit");

  tcp.Stop();
  std::printf(
      "smoke: all scripted replies correct across %zu backend(s) and both "
      "protocols, %llu cache hits, swap to generation 2 verified\n",
      backends.size(), static_cast<unsigned long long>(cache.hits));
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::string dimacs_base;
  std::vector<std::string> backends = {"ah"};
  bool backends_set = false;
  bool smoke = false;
  bool listen = false;
  bool repl_v2 = false;
  std::uint16_t port = 0;
  ServerConfig config;
  IndexRegistry::RebuildPolicy rebuild_policy =
      IndexRegistry::RebuildPolicy::kFrozenOrder;
  std::chrono::milliseconds min_reload_interval{0};

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next_value = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s needs a value\n", flag);
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--smoke") {
      smoke = true;
    } else if (arg == "--backend" || arg == "--backends") {
      backends = SplitCsv(next_value(arg.c_str()));
      backends_set = true;
      if (backends.empty()) {
        std::fprintf(stderr, "%s needs at least one backend name\n",
                     arg.c_str());
        return 2;
      }
    } else if (arg == "--protocol") {
      const std::string value = next_value("--protocol");
      if (value == "v1") {
        repl_v2 = false;
      } else if (value == "v2") {
        repl_v2 = true;
      } else {
        std::fprintf(stderr, "--protocol wants 'v1' or 'v2', got %s\n",
                     value.c_str());
        return 2;
      }
    } else if (arg == "--listen") {
      listen = true;
      port = static_cast<std::uint16_t>(
          std::strtoul(next_value("--listen"), nullptr, 10));
    } else if (arg == "--cache") {
      config.cache_capacity = static_cast<std::size_t>(
          std::strtoull(next_value("--cache"), nullptr, 10));
    } else if (arg == "--cache-ttl-ms") {
      config.cache_ttl = std::chrono::milliseconds(
          std::strtoull(next_value("--cache-ttl-ms"), nullptr, 10));
    } else if (arg == "--admission") {
      config.admission_capacity = static_cast<std::size_t>(
          std::strtoull(next_value("--admission"), nullptr, 10));
    } else if (arg == "--admission-per-client") {
      config.admission_per_client = static_cast<std::size_t>(
          std::strtoull(next_value("--admission-per-client"), nullptr, 10));
    } else if (arg == "--timeout-ms") {
      config.request_timeout = std::chrono::milliseconds(
          std::strtoull(next_value("--timeout-ms"), nullptr, 10));
    } else if (arg == "--matrix-max-locations") {
      config.max_matrix_locations = static_cast<std::size_t>(
          std::strtoull(next_value("--matrix-max-locations"), nullptr, 10));
    } else if (arg == "--rebuild-policy") {
      const std::string value = next_value("--rebuild-policy");
      if (value == "frozen") {
        rebuild_policy = IndexRegistry::RebuildPolicy::kFrozenOrder;
      } else if (value == "scratch") {
        rebuild_policy = IndexRegistry::RebuildPolicy::kFromScratch;
      } else {
        std::fprintf(stderr,
                     "--rebuild-policy wants 'frozen' or 'scratch', got %s\n",
                     value.c_str());
        return 2;
      }
    } else if (arg == "--min-reload-interval-ms") {
      min_reload_interval = std::chrono::milliseconds(
          std::strtoull(next_value("--min-reload-interval-ms"), nullptr, 10));
    } else if (!arg.empty() && arg[0] == '-') {
      std::fprintf(stderr, "unknown flag %s\n", arg.c_str());
      return 2;
    } else {
      dimacs_base = arg;
    }
  }

  if (smoke) {
    // Fast-building backends by default so the swap scenario exercises
    // multi-backend routing; hl second so the @-prefix and `use` steps
    // route through the label tables. --backends overrides.
    if (!backends_set) backends = {"ch", "hl", "alt"};
    return RunSmoke(backends);
  }

  Graph graph;
  if (!dimacs_base.empty()) {
    std::printf("loading DIMACS network %s ...\n", dimacs_base.c_str());
    graph = ReadDimacsFiles(dimacs_base);
  } else {
    RoadGenParams gen;
    gen.cols = gen.rows = 70;
    gen.seed = 8;
    graph = GenerateRoadNetwork(gen);
  }
  std::printf("network: %zu nodes, %zu arcs\n", graph.NumNodes(),
              graph.NumArcs());

  Timer build;
  std::shared_ptr<IndexRegistry> registry;
  try {
    registry = std::make_shared<IndexRegistry>(std::move(graph), backends);
  } catch (const std::exception& e) {
    // Duplicate or unknown names in --backends land here: a clean CLI
    // error, not an uncaught throw.
    std::fprintf(stderr, "cannot build backends: %s\n", e.what());
    return 2;
  }
  registry->SetRebuildPolicy(rebuild_policy);
  registry->SetMinReloadInterval(min_reload_interval);
  ServerStack stack(registry, config);
  stack.SetPois(MakePois(stack.NumNodes(), 50, 4));
  std::printf("%zu backend(s) ready in %.2fs; cache %zu entries (ttl %lld "
              "ms), admission %zu in flight, %lld ms deadline\n",
              backends.size(), build.Seconds(), config.cache_capacity,
              static_cast<long long>(config.cache_ttl.count()),
              config.admission_capacity,
              static_cast<long long>(config.request_timeout.count()));
  for (const std::string& backend : backends) {
    const EpochHandle epoch = registry->Current(backend);
    std::printf("  %-10s gen %llu, %.1f MB, built in %.2fs%s\n",
                backend.c_str(),
                static_cast<unsigned long long>(epoch->generation),
                static_cast<double>(epoch->oracle->BuildStats().index_bytes) /
                    (1024.0 * 1024.0),
                epoch->oracle->BuildStats().seconds,
                backend == registry->DefaultBackend() ? "  [default]" : "");
  }

  if (listen) {
    TcpServerConfig tcp_config;
    tcp_config.port = port;
    TcpServer tcp(stack, tcp_config);
    std::string error;
    if (!tcp.Start(&error)) {
      std::fprintf(stderr, "cannot listen: %s\n", error.c_str());
      return 1;
    }
    std::printf(
        "listening on 127.0.0.1:%u — try: printf 'd 0 500\\nq\\n' | nc "
        "127.0.0.1 %u\nREPL still active on stdin; 'q' or EOF stops the "
        "server.\n",
        tcp.Port(), tcp.Port());
    ReplLoop(stack, repl_v2);
    tcp.Stop();
    return 0;
  }

  std::printf(
      "commands: d|p|k|b|m|use|upd|updf|reload|stats|inv|q (protocol %s), "
      "bench <n> / wait (REPL)\n",
      repl_v2 ? "v2 frame round trip" : "v1");
  ReplLoop(stack, repl_v2);
  return 0;
}
