// dataset_tool: command-line utility around the dataset catalog and DIMACS
// I/O. Generates a synthetic stand-in for any Table-2 dataset and writes it
// as a DIMACS .gr/.co pair, or inspects an existing pair.
//
// Usage:
//   dataset_tool gen <name> <scale> <output-base>   e.g. gen DE 0.0625 /tmp/de
//   dataset_tool info <base>                        reads <base>.gr/.co
//   dataset_tool list                               prints the catalog
#include <cstdio>
#include <cstdlib>
#include <string>

#include "gen/catalog.h"
#include "graph/connectivity.h"
#include "graph/dimacs.h"
#include "util/table.h"

namespace {

int Usage() {
  std::fprintf(stderr,
               "usage:\n"
               "  dataset_tool list\n"
               "  dataset_tool gen <name> <scale> <output-base>\n"
               "  dataset_tool info <base>\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace ah;
  if (argc < 2) return Usage();
  const std::string cmd = argv[1];

  if (cmd == "list") {
    TextTable table({"name", "region", "paper nodes", "paper edges"});
    for (const DatasetSpec& spec : PaperDatasets()) {
      table.AddRow({spec.name, spec.region,
                    TextTable::Int(static_cast<long long>(spec.paper_nodes)),
                    TextTable::Int(static_cast<long long>(spec.paper_arcs))});
    }
    table.Print();
    return 0;
  }

  if (cmd == "gen") {
    if (argc != 5) return Usage();
    const auto spec = FindDataset(argv[2]);
    if (!spec) {
      std::fprintf(stderr, "unknown dataset '%s' (try: dataset_tool list)\n",
                   argv[2]);
      return 1;
    }
    const double scale = std::strtod(argv[3], nullptr);
    if (scale <= 0.0 || scale > 1.0) {
      std::fprintf(stderr, "scale must be in (0, 1]\n");
      return 1;
    }
    const Graph g = MakeScaledDataset(*spec, scale);
    WriteDimacsFiles(g, argv[4]);
    std::printf("wrote %s.gr / %s.co: %zu nodes, %zu arcs\n", argv[4],
                argv[4], g.NumNodes(), g.NumArcs());
    return 0;
  }

  if (cmd == "info") {
    if (argc != 3) return Usage();
    try {
      const Graph g = ReadDimacsFiles(argv[2]);
      const Box box = g.BoundingBox();
      std::printf("nodes:              %zu\n", g.NumNodes());
      std::printf("arcs:               %zu\n", g.NumArcs());
      std::printf("max degree:         %zu\n", g.MaxDegree());
      std::printf("strongly connected: %s\n",
                  IsStronglyConnected(g) ? "yes" : "no");
      std::printf("bounding box:       [%d, %d] x [%d, %d]\n", box.min_x,
                  box.max_x, box.min_y, box.max_y);
    } catch (const std::exception& e) {
      std::fprintf(stderr, "error: %s\n", e.what());
      return 1;
    }
    return 0;
  }
  return Usage();
}
