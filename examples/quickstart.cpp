// Quickstart: the minimal end-to-end use of the library.
//   1. Obtain a road network (here: the synthetic generator; DIMACS files
//      work the same way via ReadDimacsFiles).
//   2. Build the Arterial Hierarchy index.
//   3. Answer distance and shortest-path queries.
//
// Build & run:  ./build/examples/quickstart
#include <cstdio>

#include "core/ah_query.h"
#include "gen/road_gen.h"
#include "workload/workload.h"

int main() {
  using namespace ah;

  // 1. A ~10k-node road network with local streets, arterials and highways.
  RoadGenParams gen;
  gen.cols = gen.rows = 100;
  gen.seed = 2013;
  const Graph graph = GenerateRoadNetwork(gen);
  std::printf("road network: %zu nodes, %zu arcs\n", graph.NumNodes(),
              graph.NumArcs());

  // 2. Build the AH index. AhParams exposes every knob from the paper
  //    (grid depth, ordering, elevating-edge band, ...); defaults are fine.
  const AhIndex index = AhIndex::Build(graph);
  const AhBuildStats& stats = index.build_stats();
  std::printf(
      "AH index: built in %.2fs (levels %d..0, %zu shortcuts, %.1f MB)\n",
      stats.total_seconds, stats.max_level, stats.shortcuts,
      static_cast<double>(index.SizeBytes()) / (1024.0 * 1024.0));

  // 3. Queries. One AhQuery per thread; it holds reusable search state.
  AhQuery query(index);
  const NodeId s = 0;
  const NodeId t = static_cast<NodeId>(graph.NumNodes() - 1);

  const Dist d = query.Distance(s, t);
  std::printf("distance(%u -> %u) = %llu (travel-time units)\n", s, t,
              static_cast<unsigned long long>(d));

  const PathResult path = query.Path(s, t);
  std::printf("shortest path has %zu edges; first hops:", path.NumEdges());
  for (std::size_t i = 0; i < path.nodes.size() && i < 8; ++i) {
    std::printf(" %u", path.nodes[i]);
  }
  std::printf(" ...\n");

  // The paper's Q1..Q10 workload generator is available too:
  const Workload workload = GenerateWorkload(graph, {.pairs_per_set = 5});
  std::printf("workload: lmax=%llu, Q10 holds %zu far pairs\n",
              static_cast<unsigned long long>(workload.lmax),
              workload.sets.back().pairs.size());
  return 0;
}
