// Table 1: asymptotic performance of the state of the art (a documentation
// table in the paper), complemented here with the measured quantities the
// bounds are parameterized by: the grid depth h, the populated hierarchy
// height, an arterial-dimension estimate λ, and per-node index densities.
#include "arterial/dimension.h"
#include "bench_common.h"
#include "core/ah_index.h"

int main() {
  using namespace ah;
  using namespace ah::bench;
  PrintHeader("Table 1 — Asymptotic Performance of the State of the Art",
              "the paper's bounds, plus measured h and lambda per dataset");

  std::printf(
      "\n%-18s %-16s %-16s %-22s %-22s\n"
      "------------------------------------------------------------------"
      "----------------------\n"
      "%-18s %-16s %-16s %-22s %-22s\n"
      "%-18s %-16s %-16s %-22s %-22s\n"
      "%-18s %-16s %-16s %-22s %-22s\n"
      "%-18s %-16s %-16s %-22s %-22s\n"
      "%-18s %-16s %-16s %-22s %-22s\n"
      "%-18s %-16s %-16s %-22s %-22s\n",
      "Reference", "Space", "Preprocessing", "Distance Query",
      "Shortest Path Query",
      "Mozes&Sommer[19]", "O(n)", "O(n log n)", "O(n^0.5+eps)",
      "O(k + n^0.5+eps)",
      "  (tunable S)", "O(S)", "O~(S)", "O~(n/sqrt(S))", "O~(k + n/sqrt(S))",
      "Abraham[4]", "O(n log n logD)", "O(n^2 log n)", "O(log^2 n log^2 D)",
      "O(k + log^2 n log^2 D)",
      "  (variant)", "O(n log n logD)", "O(n^2 log n)", "O(log n logD)",
      "N/A",
      "Samet[21] SILC", "O(n sqrt(n))", "O(n^2 log n)", "O(k log n)",
      "O(k log n)",
      "this paper (AH)", "O(hn)", "O(hn^2)", "O(h log h)", "O(k + h log h)");

  const std::size_t count = BenchDatasetCountFromEnv(4);
  std::printf("\nMeasured parameters on the synthetic stand-ins:\n\n");
  TextTable table({"dataset", "n", "h (grids)", "levels used", "lambda mean",
                   "lambda max", "arcs/n in H*", "gateways/n",
                   "build s"});
  for (const PreparedDataset& d : PrepareDatasets(count)) {
    AhIndex ah = AhIndex::Build(d.graph);
    // λ estimate from one mid-resolution pass of the Figure-3 measurement.
    const auto dim = MeasureArterialDimension(d.graph, 6, 6, 800, 7);
    const double lambda_mean = dim.empty() ? 0 : dim[0].mean;
    const double lambda_max = dim.empty() ? 0 : dim[0].max;
    const AhBuildStats& stats = ah.build_stats();
    table.AddRow(
        {d.spec.name, TextTable::Int(static_cast<long long>(d.graph.NumNodes())),
         std::to_string(stats.grid_depth), std::to_string(stats.max_level + 1),
         TextTable::Num(lambda_mean, 1), TextTable::Num(lambda_max, 0),
         TextTable::Num(static_cast<double>(ah.search_graph().NumArcs()) /
                            static_cast<double>(d.graph.NumNodes()),
                        2),
         TextTable::Num(static_cast<double>(stats.gateway_entries) /
                            static_cast<double>(d.graph.NumNodes()),
                        2),
         TextTable::Num(stats.total_seconds, 2)});
    std::fflush(stdout);
  }
  std::printf("\n");
  table.Print();
  std::printf(
      "\nShape check: h stays ~log(diameter) small; lambda stays bounded\n"
      "(Assumption 1); H* arcs per node stay O(1)-ish — the premises of the\n"
      "O(h log h) distance-query bound.\n");
  return 0;
}
