// Ablation: AH query-time pruning. Measures, per query set, the settled
// node count and latency of
//   (a) exact mode (rank constraint only — plain hierarchy query),
//   (b) + proximity constraint,
//   (c) + elevating jumps,
//   (d) full pruned mode (paper's query algorithm),
// all validated against Dijkstra checksums.
#include "bench_common.h"
#include "core/ah_query.h"
#include "routing/dijkstra.h"

int main() {
  using namespace ah;
  using namespace ah::bench;
  PrintHeader("Ablation — AH Query Pruning (§4.3)",
              "rank constraint alone vs. +proximity vs. +elevating");

  const std::size_t count = BenchDatasetCountFromEnv(2);
  const std::size_t pairs = EnvSizeT("AH_BENCH_PAIRS", 60);

  for (const PreparedDataset& d : PrepareDatasets(count)) {
    const Graph& g = d.graph;
    const Workload workload = BenchWorkload(g, pairs);
    AhIndex index = AhIndex::Build(g);
    Dijkstra dijkstra(g);

    struct Mode {
      std::string name;
      AhQueryOptions options;
    };
    std::vector<Mode> modes;
    modes.push_back({"exact (rank only)",
                     AhQueryOptions{.mode = AhQueryMode::kExact}});
    {
      AhQueryOptions o;
      o.use_elevating = false;
      modes.push_back({"+proximity", o});
    }
    {
      AhQueryOptions o;
      o.use_proximity = false;
      modes.push_back({"+elevating", o});
    }
    modes.push_back({"full pruned", AhQueryOptions{}});

    std::printf("\n--- %s (n = %s) — avg settled nodes / avg us per set ---\n",
                d.spec.name.c_str(),
                TextTable::Int(static_cast<long long>(g.NumNodes())).c_str());
    std::vector<std::string> header = {"set", "pairs"};
    for (const Mode& m : modes) {
      header.push_back(m.name + " settled");
      header.push_back(m.name + " us");
    }
    header.push_back("ok");
    TextTable table(header);
    for (const QuerySet& qs : workload.sets) {
      const auto [dij_us, ref_sum] = TimeQueries(
          qs.pairs, [&](NodeId s, NodeId t) { return dijkstra.Distance(s, t); });
      (void)dij_us;
      std::vector<std::string> row = {QuerySetLabel(qs.index),
                                      std::to_string(qs.pairs.size())};
      bool all_ok = true;
      for (const Mode& m : modes) {
        AhQuery query(index, m.options);
        std::size_t settled = 0;
        const auto [us, sum] = TimeQueries(qs.pairs, [&](NodeId s, NodeId t) {
          const Dist dd = query.Distance(s, t);
          settled += query.LastStats().settled;
          return dd;
        });
        all_ok &= sum == ref_sum;
        row.push_back(TextTable::Num(
            static_cast<double>(settled) /
                std::max<std::size_t>(qs.pairs.size(), 1),
            1));
        row.push_back(TextTable::Num(us, 2));
      }
      row.push_back(all_ok ? "yes" : "MISMATCH");
      table.AddRow(row);
    }
    table.Print();
    std::fflush(stdout);
  }
  std::printf(
      "\nShape check: each pruning layer cuts settled nodes, most strongly\n"
      "on far query sets (Q8-Q10); every mode stays exact (ok = yes).\n");
  return 0;
}
