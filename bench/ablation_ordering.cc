// Ablation: the §4.4 node-ranking choices. Compares AH built with
//   (a) vertex-cover ordering + downgrading (paper default),
//   (b) vertex-cover ordering without downgrading,
//   (c) random within-level ordering,
// and CH's edge-difference ordering as the reference point, on build cost,
// shortcut count, and query performance over the mixed workload.
#include "bench_common.h"
#include "ch/ch_index.h"
#include "core/ah_query.h"
#include "routing/dijkstra.h"

int main() {
  using namespace ah;
  using namespace ah::bench;
  PrintHeader("Ablation — AH Node Ordering (§4.4)",
              "vertex-cover + downgrade vs. variants, CH as reference");

  const std::size_t count = BenchDatasetCountFromEnv(2);
  const std::size_t pairs = EnvSizeT("AH_BENCH_PAIRS", 60);

  for (const PreparedDataset& d : PrepareDatasets(count)) {
    const Graph& g = d.graph;
    const Workload workload = BenchWorkload(g, pairs);
    std::vector<std::pair<NodeId, NodeId>> mixed;
    for (const QuerySet& qs : workload.sets) {
      mixed.insert(mixed.end(), qs.pairs.begin(), qs.pairs.end());
    }
    Dijkstra dijkstra(g);
    const auto [dij_us, ref_sum] = TimeQueries(
        mixed, [&](NodeId s, NodeId t) { return dijkstra.Distance(s, t); });

    struct Variant {
      std::string name;
      AhParams params;
    };
    std::vector<Variant> variants;
    variants.push_back({"AH (greedy-in-level)", {}});
    {
      AhParams p;
      p.ordering.within_level = WithinLevelOrder::kVertexCover;
      variants.push_back({"AH (vertex cover, §4.4)", p});
    }
    {
      AhParams p;
      p.ordering.within_level = WithinLevelOrder::kRandom;
      p.ordering.downgrade = false;
      variants.push_back({"AH (random order)", p});
    }
    {
      AhParams p;
      p.ordering.downgrade = false;
      variants.push_back({"AH (greedy, no downgrade)", p});
    }

    std::printf("\n--- %s (n = %s, %zu mixed queries) ---\n",
                d.spec.name.c_str(),
                TextTable::Int(static_cast<long long>(g.NumNodes())).c_str(),
                mixed.size());
    TextTable table({"variant", "build s", "shortcuts/n", "levels",
                     "query us", "settled/query", "ok"});
    for (const Variant& variant : variants) {
      Timer timer;
      AhIndex index = AhIndex::Build(g, variant.params);
      const double build_s = timer.Seconds();
      AhQuery query(index);
      std::size_t settled = 0;
      const auto [us, sum] = TimeQueries(mixed, [&](NodeId s, NodeId t) {
        const Dist dd = query.Distance(s, t);
        settled += query.LastStats().settled;
        return dd;
      });
      table.AddRow(
          {variant.name, TextTable::Num(build_s, 2),
           TextTable::Num(static_cast<double>(index.build_stats().shortcuts) /
                              static_cast<double>(g.NumNodes()),
                          2),
           std::to_string(index.build_stats().max_level + 1),
           TextTable::Num(us, 2),
           TextTable::Num(static_cast<double>(settled) /
                              std::max<std::size_t>(mixed.size(), 1),
                          1),
           sum == ref_sum ? "yes" : "MISMATCH"});
      std::fflush(stdout);
    }
    {
      Timer timer;
      ChIndex ch = ChIndex::Build(g);
      const double build_s = timer.Seconds();
      ChQuery query(ch);
      std::size_t settled = 0;
      const auto [us, sum] = TimeQueries(mixed, [&](NodeId s, NodeId t) {
        const Dist dd = query.Distance(s, t);
        settled += query.LastStats().settled;
        return dd;
      });
      table.AddRow(
          {"CH (edge difference)", TextTable::Num(build_s, 2),
           TextTable::Num(static_cast<double>(ch.build_stats().shortcuts) /
                              static_cast<double>(g.NumNodes()),
                          2),
           "-", TextTable::Num(us, 2),
           TextTable::Num(static_cast<double>(settled) /
                              std::max<std::size_t>(mixed.size(), 1),
                          1),
           sum == ref_sum ? "yes" : "MISMATCH"});
    }
    table.Print();
  }
  std::printf(
      "\nShape check: cover+downgrade beats random ordering on query time;\n"
      "all variants remain exact (ok = yes).\n");
  return 0;
}
