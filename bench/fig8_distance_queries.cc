// Figure 8: average distance-query time (microseconds) per query set
// Q1..Q10, per dataset, for Dijkstra / SILC / CH / HL / AH.
//
// Expected shape (paper): AH fastest of the search-based methods and by
// >50% on far queries (Q8-Q10); CH close behind; SILC competitive on small
// inputs only (and dropped on large ones — here: skipped when n exceeds
// AH_BENCH_SILC_MAX); Dijkstra slowest, degrading steeply with query
// distance. HL answers by merge-joining two sorted label arrays — no graph
// search at all — so its per-query cost is flat across the sets and well
// below CH (it trades label-building time and space for it).
#include "bench_common.h"
#include "bench_json.h"
#include "ch/ch_index.h"
#include "core/ah_query.h"
#include "hl/hl_index.h"
#include "routing/dijkstra.h"
#include "silc/silc_index.h"

int main() {
  using namespace ah;
  using namespace ah::bench;
  BenchJson json("fig8");
  PrintHeader("Figure 8 — Efficiency of Distance Queries vs. Query Set",
              "avg running time (microsec) per query set Q1..Q10");

  const std::size_t count = BenchDatasetCountFromEnv(4);
  const std::size_t pairs = EnvSizeT("AH_BENCH_PAIRS", 100);
  const std::size_t silc_max = EnvSizeT("AH_BENCH_SILC_MAX", 8000);

  for (const PreparedDataset& d : PrepareDatasets(count)) {
    const Graph& g = d.graph;
    const Workload workload = BenchWorkload(g, pairs);

    Timer build_timer;
    ChIndex ch = ChIndex::Build(g);
    std::printf("[build] CH   %.1fs\n", build_timer.Seconds());
    build_timer.Restart();
    AhIndex ah = AhIndex::Build(g);
    std::printf("[build] AH   %.1fs\n", build_timer.Seconds());
    build_timer.Restart();
    HlIndex hl = HlIndex::Build(g);
    std::printf("[build] HL   %.1fs (%.1f avg labels/node, %.1f MB)\n",
                build_timer.Seconds(),
                static_cast<double>(hl.build_stats().in_labels +
                                    hl.build_stats().out_labels) /
                    std::max<std::size_t>(1, 2 * g.NumNodes()),
                static_cast<double>(hl.SizeBytes()) / (1024.0 * 1024.0));
    const bool run_silc = g.NumNodes() <= silc_max;
    SilcIndex silc;
    if (run_silc) {
      build_timer.Restart();
      silc = SilcIndex::Build(g);
      std::printf("[build] SILC %.1fs\n", build_timer.Seconds());
    } else {
      std::printf("[build] SILC skipped (n > %zu; cf. paper §6.4)\n",
                  silc_max);
    }
    std::fflush(stdout);

    Dijkstra dijkstra(g);
    ChQuery ch_query(ch);
    AhQuery ah_query(ah);

    std::printf("\n--- %s (n = %s) — distance queries ---\n",
                d.spec.name.c_str(),
                TextTable::Int(static_cast<long long>(g.NumNodes())).c_str());
    TextTable table({"set", "pairs", "AH (us)", "CH (us)", "HL (us)",
                     "SILC (us)", "Dijkstra (us)", "AH/CH speedup",
                     "CH/HL speedup"});
    double hl_speedup_sum = 0;
    double hl_speedup_base = 0;
    std::size_t hl_speedup_sets = 0;
    for (const QuerySet& qs : workload.sets) {
      const auto [ah_us, ah_sum] = TimeQueries(
          qs.pairs, [&](NodeId s, NodeId t) { return ah_query.Distance(s, t); });
      const auto [ch_us, ch_sum] = TimeQueries(
          qs.pairs, [&](NodeId s, NodeId t) { return ch_query.Distance(s, t); });
      const auto [hl_us, hl_sum] = TimeQueries(
          qs.pairs, [&](NodeId s, NodeId t) { return hl.Distance(s, t); });
      const auto [dij_us, dij_sum] = TimeQueries(
          qs.pairs, [&](NodeId s, NodeId t) { return dijkstra.Distance(s, t); });
      std::string silc_cell = "-";
      if (run_silc) {
        const auto [silc_us, silc_sum] = TimeQueries(
            qs.pairs, [&](NodeId s, NodeId t) { return silc.Distance(s, t); });
        silc_cell = TextTable::Num(silc_us, 2);
        if (silc_sum != dij_sum) {
          std::printf("!! SILC checksum mismatch on Q%d\n", qs.index);
        }
      }
      if (ah_sum != dij_sum || ch_sum != dij_sum || hl_sum != dij_sum) {
        std::printf(
            "!! checksum mismatch on Q%d (ah=%llu ch=%llu hl=%llu dij=%llu)\n",
            qs.index, static_cast<unsigned long long>(ah_sum),
            static_cast<unsigned long long>(ch_sum),
            static_cast<unsigned long long>(hl_sum),
            static_cast<unsigned long long>(dij_sum));
      }
      // Aggregate times, not a mean of per-set ratios: the speedup reported
      // below is (total CH time) / (total HL time) over every query, which
      // is the mean-latency ratio users actually see.
      if (hl_us > 0) {
        const double np = static_cast<double>(qs.pairs.size());
        hl_speedup_sum += ch_us * np;
        hl_speedup_base += hl_us * np;
        ++hl_speedup_sets;
      }
      table.AddRow({QuerySetLabel(qs.index),
                    std::to_string(qs.pairs.size()), TextTable::Num(ah_us, 2),
                    TextTable::Num(ch_us, 2), TextTable::Num(hl_us, 2),
                    silc_cell, TextTable::Num(dij_us, 2),
                    ch_us > 0 ? TextTable::Num(ch_us / std::max(ah_us, 1e-9), 2)
                              : "-",
                    ch_us > 0 ? TextTable::Num(ch_us / std::max(hl_us, 1e-9), 2)
                              : "-"});
      // One gate series per (backend, set): avg latency as the quantiles,
      // 1e6/avg as qps, and the Dijkstra-verified distance sum as the
      // checksum the perf gate hard-fails on.
      const struct {
        const char* name;
        double us;
        Dist sum;
      } gate_series[] = {{"ah", ah_us, ah_sum},
                         {"ch", ch_us, ch_sum},
                         {"hl", hl_us, hl_sum}};
      for (const auto& s : gate_series) {
        json.AddSeries(d.spec.name + "/" + s.name + "/" +
                           QuerySetLabel(qs.index),
                       s.us > 0 ? 1e6 / s.us : 0, s.us, s.us, s.sum);
      }
    }
    table.Print();
    if (hl_speedup_base > 0) {
      std::printf(
          "CH vs HL mean distance latency: %.1fx (aggregate over %zu sets)\n",
          hl_speedup_sum / hl_speedup_base, hl_speedup_sets);
    }
    std::fflush(stdout);
  }
  if (!json.WriteToEnvPath()) return 1;
  std::printf(
      "\nPaper shape check: AH <= CH on all sets and well below CH on\n"
      "Q8-Q10; Dijkstra worst and growing with the set index. HL flat and\n"
      "fastest across all sets (merge join, no search).\n");
  return 0;
}
