// Table 2: dataset characteristics. Prints the paper's reported sizes next
// to the synthetic stand-ins generated at the configured scale.
#include "bench_common.h"
#include "graph/connectivity.h"

int main() {
  using namespace ah;
  using namespace ah::bench;
  PrintHeader("Table 2 — Dataset Characteristics",
              "paper sizes vs. synthetic stand-ins (see DESIGN.md §4)");

  const std::size_t count = BenchDatasetCountFromEnv(10);
  const double scale = BenchScaleFromEnv();

  TextTable table({"Name", "Region", "Paper nodes", "Paper edges",
                   "Gen nodes", "Gen edges", "Gen m/n", "SCC"});
  for (std::size_t i = 0; i < count; ++i) {
    const DatasetSpec& spec = PaperDatasets()[i];
    Timer timer;
    Graph g = MakeScaledDataset(spec, scale);
    const bool scc = IsStronglyConnected(g);
    table.AddRow({spec.name, spec.region,
                  TextTable::Int(static_cast<long long>(spec.paper_nodes)),
                  TextTable::Int(static_cast<long long>(spec.paper_arcs)),
                  TextTable::Int(static_cast<long long>(g.NumNodes())),
                  TextTable::Int(static_cast<long long>(g.NumArcs())),
                  TextTable::Num(static_cast<double>(g.NumArcs()) /
                                     static_cast<double>(g.NumNodes()),
                                 2),
                  scc ? "yes" : "NO"});
    std::printf("[gen] %-5s done in %.1fs\n", spec.name.c_str(),
                timer.Seconds());
    std::fflush(stdout);
  }
  std::printf("\n");
  table.Print();
  std::printf(
      "\nNote: generated networks reproduce the structural properties the\n"
      "paper relies on (planar-ish, degree-bounded, strongly connected,\n"
      "hierarchical road classes) at %.4fx the paper's node counts.\n",
      scale);
  return 0;
}
