// fig_serve — wire-protocol throughput: v1 text vs v2 binary frames over a
// real loopback TCP round-trip. For every dataset x backend a full serving
// stack (registry -> ServerStack -> TcpServer) is started on an ephemeral
// port and three client workloads are driven through both protocols:
//
//   point   one distance query per request, pipelined
//   batch   `b` requests of AH_BENCH_BATCH pairs each
//   matrix  `m` requests of AH_BENCH_MATRIX x AH_BENCH_MATRIX locations
//
// Each (series, protocol) pair reports end-to-end queries/sec (request
// encode + wire + server parse/dispatch/compute + reply encode + client
// decode) and the fold-of-distances checksum; the v1 and v2 checksums of a
// series must be bit-identical — the cross-protocol equivalence oracle —
// and any divergence prints a "!! ... mismatch" line and fails the run.
//
// The server runs its production default: result cache ON. An untimed v1
// warming pass fills the cache, then both protocols are timed at cache-hit
// steady state — the SALT-style hot workload the serve path exists for —
// so the ratio isolates framing cost (lex/format vs fixed-width packing),
// not engine speed; fig_throughput owns the engine-bound numbers. Set
// AH_BENCH_COLD=1 to disable the cache and measure protocol + compute
// instead. No deadline is set. Latency columns are the pipelined per-query
// average (wall / queries), not tail quantiles.
//
// Point/batch queries are drawn with repetition from a hot set of
// AH_BENCH_HOTSET distinct pairs (default 512); matrices over the server's
// matrix_cache_max_cells threshold bypass the cache and exercise the
// bucketized matrix engine plus framing.
//
// Env knobs: AH_BENCH_PAIRS (point queries, default 2000), AH_BENCH_BATCH
// (pairs per batch request, default 256), AH_BENCH_MATRIX (matrix side,
// default 40), AH_BENCH_REPS (best-of, default 3), AH_BENCH_COLD,
// AH_BENCH_HOTSET, AH_BENCH_BACKENDS, AH_BENCH_SCALE, AH_BENCH_DATASETS,
// AH_BENCH_JSON.
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "api/distance_oracle.h"
#include "api/index_registry.h"
#include "bench_common.h"
#include "bench_json.h"
#include "server/binary_protocol.h"
#include "server/line_client.h"
#include "server/protocol.h"
#include "server/server_stack.h"
#include "server/tcp_server.h"
#include "util/rng.h"
#include "util/table.h"
#include "util/timer.h"

namespace {

using namespace ah;
using namespace ah::bench;
using namespace ah::server;

using QueryPair = std::pair<NodeId, NodeId>;

// Comma-separated AH_BENCH_BACKENDS subset (preserving the canonical
// OracleNames() order); unset or empty = every backend.
std::vector<std::string> BackendsFromEnv() {
  std::vector<std::string> filter;
  if (const char* raw = std::getenv("AH_BENCH_BACKENDS")) {
    std::string_view rest(raw);
    while (!rest.empty()) {
      const std::size_t comma = rest.find(',');
      const std::string_view name = rest.substr(0, comma);
      if (!name.empty()) filter.emplace_back(name);
      if (comma == std::string_view::npos) break;
      rest.remove_prefix(comma + 1);
    }
  }
  std::vector<std::string> backends;
  for (const std::string& name : OracleNames()) {
    if (filter.empty() ||
        std::find(filter.begin(), filter.end(), name) != filter.end()) {
      backends.push_back(name);
    }
  }
  return backends;
}

// SALT-style hot workload: `count` queries drawn with repetition from a
// pool of `hot_set` distinct pairs — the repeat-heavy traffic shape the
// result cache (and post-swap warm-up) exists for. hot_set >= count
// degenerates to all-distinct pairs.
std::vector<QueryPair> HotPairs(const Graph& g, std::size_t count,
                                std::size_t hot_set) {
  Rng rng(20130624);
  std::vector<QueryPair> pool;
  pool.reserve(hot_set);
  for (std::size_t i = 0; i < hot_set; ++i) {
    pool.emplace_back(static_cast<NodeId>(rng.Uniform(g.NumNodes())),
                      static_cast<NodeId>(rng.Uniform(g.NumNodes())));
  }
  std::vector<QueryPair> pairs;
  pairs.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    pairs.push_back(pool[rng.Uniform(pool.size())]);
  }
  return pairs;
}

std::vector<NodeId> RandomLocations(const Graph& g, std::size_t count,
                                    std::uint64_t salt) {
  Rng rng(20130624 + salt);
  std::vector<NodeId> nodes;
  nodes.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    nodes.push_back(static_cast<NodeId>(rng.Uniform(g.NumNodes())));
  }
  return nodes;
}

// One series = the same logical workload expressed twice: as v1 text lines
// (without the trailing '\n') and as v2 Requests, plus how many distance
// answers each request carries (for the qps denominator).
struct Series {
  std::string name;
  std::vector<std::string> v1_lines;
  std::vector<Request> v2_requests;
  std::size_t queries = 0;
};

Series MakePointSeries(const std::vector<QueryPair>& pairs) {
  Series s;
  s.name = "point";
  s.queries = pairs.size();
  for (const auto& [src, dst] : pairs) {
    s.v1_lines.push_back("d " + std::to_string(src) + " " +
                         std::to_string(dst));
    Request r;
    r.kind = RequestKind::kDistance;
    r.s = src;
    r.t = dst;
    s.v2_requests.push_back(std::move(r));
  }
  return s;
}

Series MakeBatchSeries(const std::vector<QueryPair>& pairs,
                       std::size_t batch_size) {
  Series s;
  s.name = "batch";
  s.queries = pairs.size();
  for (std::size_t begin = 0; begin < pairs.size(); begin += batch_size) {
    const std::size_t end = std::min(begin + batch_size, pairs.size());
    std::string line = "b " + std::to_string(end - begin);
    Request r;
    r.kind = RequestKind::kBatch;
    for (std::size_t i = begin; i < end; ++i) {
      line += ' ';
      line += std::to_string(pairs[i].first);
      line += ' ';
      line += std::to_string(pairs[i].second);
      r.pairs.push_back(pairs[i]);
    }
    s.v1_lines.push_back(std::move(line));
    s.v2_requests.push_back(std::move(r));
  }
  return s;
}

Series MakeMatrixSeries(const Graph& g, std::size_t side,
                        std::size_t requests) {
  Series s;
  s.name = "matrix";
  s.queries = side * side * requests;
  for (std::size_t req = 0; req < requests; ++req) {
    const std::vector<NodeId> sources = RandomLocations(g, side, 2 * req);
    const std::vector<NodeId> targets = RandomLocations(g, side, 2 * req + 1);
    std::string line =
        "m " + std::to_string(side) + " " + std::to_string(side);
    for (const NodeId n : sources) {
      line += ' ';
      line += std::to_string(n);
    }
    for (const NodeId n : targets) {
      line += ' ';
      line += std::to_string(n);
    }
    Request r;
    r.kind = RequestKind::kMatrix;
    r.sources = sources;
    r.targets = targets;
    s.v1_lines.push_back(std::move(line));
    s.v2_requests.push_back(std::move(r));
  }
  return s;
}

// Distances fold with unreachable -> 0 (kInfDist would wrap the sum).
void FoldDist(Dist d, Dist* checksum) {
  if (d != kInfDist) *checksum += d;
}

// Folds every distance in a v1 reply line: the first `skip` space-separated
// tokens are the "OK <verb> [counts...]" prelude. Returns false on an ERR
// (or otherwise unparseable) reply.
bool FoldV1Reply(const std::string& line, std::size_t skip, Dist* checksum) {
  if (line.rfind("OK ", 0) != 0) return false;
  std::size_t pos = 0;
  std::size_t token = 0;
  while (pos < line.size()) {
    const std::size_t space = line.find(' ', pos);
    const std::size_t end = space == std::string::npos ? line.size() : space;
    if (token >= skip) {
      const std::string_view t(line.data() + pos, end - pos);
      if (t != "unreachable") {
        char* parse_end = nullptr;
        const unsigned long long v =
            std::strtoull(line.c_str() + pos, &parse_end, 10);
        if (parse_end != line.c_str() + end) return false;
        FoldDist(static_cast<Dist>(v), checksum);
      }
    }
    ++token;
    if (space == std::string::npos) break;
    pos = space + 1;
  }
  return true;
}

// Folds every distance in a v2 reply frame payload. Wire distances travel
// as-is (kInfDist included), so the same unreachable -> 0 fold applies.
bool FoldV2Reply(RequestKind kind, const BinaryClient::Frame& frame,
                 Dist* checksum) {
  if (frame.header.status != 0) return false;
  const char* p = frame.payload.data();
  const std::size_t size = frame.payload.size();
  switch (kind) {
    case RequestKind::kDistance:
      if (size != 8) return false;
      FoldDist(static_cast<Dist>(GetU64(p)), checksum);
      return true;
    case RequestKind::kBatch: {
      if (size < 4) return false;
      const std::uint32_t n = GetU32(p);
      if (size != 4 + 8 * static_cast<std::size_t>(n)) return false;
      for (std::uint32_t i = 0; i < n; ++i) {
        FoldDist(static_cast<Dist>(GetU64(p + 4 + 8 * i)), checksum);
      }
      return true;
    }
    case RequestKind::kMatrix: {
      if (size < 8) return false;
      const std::uint64_t cells = static_cast<std::uint64_t>(GetU32(p)) *
                                  static_cast<std::uint64_t>(GetU32(p + 4));
      if (size != 8 + 8 * cells) return false;
      for (std::uint64_t i = 0; i < cells; ++i) {
        FoldDist(static_cast<Dist>(GetU64(p + 8 + 8 * i)), checksum);
      }
      return true;
    }
    default:
      return false;
  }
}

struct RunResult {
  double best_seconds = 0;
  Dist checksum = 0;
  bool ok = true;
};

// Client-side pipelining window: keeps this many requests in flight —
// comfortably under the server's per-connection in-flight cap (128) and
// the admission budget configured below, so nothing is shed or
// flow-controlled into a stall regardless of the workload size.
constexpr std::size_t kWindow = 64;

// One timed v1 pass: fresh connection, pipelined lines with a bounded
// window, every reply folded into the checksum.
bool RunV1Once(std::uint16_t port, const Series& series, std::size_t skip,
               double* seconds, Dist* checksum) {
  LineClient client;
  if (!client.Connect(port)) return false;
  std::string line;
  if (!client.ReadLine(&line)) return false;  // banner
  Timer timer;
  std::size_t sent = 0;
  std::size_t replied = 0;
  while (replied < series.v1_lines.size()) {
    while (sent < series.v1_lines.size() && sent - replied < kWindow) {
      if (!client.Send(series.v1_lines[sent] + "\n")) return false;
      ++sent;
    }
    if (!client.ReadLine(&line)) return false;
    if (!FoldV1Reply(line, skip, checksum)) return false;
    ++replied;
  }
  *seconds = timer.Seconds();
  return true;
}

// One timed v2 pass: fresh negotiated connection, pipelined frames with
// the same window, replies collected by request id.
bool RunV2Once(std::uint16_t port, const Series& series, double* seconds,
               Dist* checksum) {
  BinaryClient client;
  if (!client.Connect(port)) return false;
  std::vector<std::string> bodies;
  bodies.reserve(series.v2_requests.size());
  for (const Request& r : series.v2_requests) {
    bodies.push_back(EncodeRequestBody(r));
  }
  const Opcode opcode = OpcodeForKind(series.v2_requests.front().kind);
  Timer timer;
  std::vector<std::uint64_t> ids(series.v2_requests.size(), 0);
  std::size_t sent = 0;
  std::size_t replied = 0;
  BinaryClient::Frame frame;
  while (replied < series.v2_requests.size()) {
    while (sent < series.v2_requests.size() && sent - replied < kWindow) {
      ids[sent] = client.SendRequest(opcode, bodies[sent]);
      if (ids[sent] == 0) return false;
      ++sent;
    }
    if (!client.ReadReplyFor(ids[replied], &frame)) return false;
    if (!FoldV2Reply(series.v2_requests[replied].kind, frame, checksum)) {
      return false;
    }
    ++replied;
  }
  *seconds = timer.Seconds();
  return true;
}

// Best-of-`reps` timing; the checksum comes from the first rep and every
// later rep must reproduce it (the server is deterministic, so a drift
// here is a bug, not noise).
template <typename RunOnce>
RunResult RunSeries(std::size_t reps, RunOnce&& run_once) {
  RunResult result;
  for (std::size_t rep = 0; rep < reps; ++rep) {
    double seconds = 0;
    Dist checksum = 0;
    if (!run_once(&seconds, &checksum)) {
      result.ok = false;
      return result;
    }
    if (rep == 0) {
      result.checksum = checksum;
      result.best_seconds = seconds;
    } else {
      if (checksum != result.checksum) {
        result.ok = false;
        return result;
      }
      result.best_seconds = std::min(result.best_seconds, seconds);
    }
  }
  return result;
}

std::string Fmt(const char* fmt, double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), fmt, v);
  return buf;
}

}  // namespace

int main() {
  const std::size_t point_pairs = EnvSizeT("AH_BENCH_PAIRS", 2000);
  const std::size_t batch_size = EnvSizeT("AH_BENCH_BATCH", 256);
  const std::size_t matrix_side = EnvSizeT("AH_BENCH_MATRIX", 40);
  const std::size_t matrix_requests = EnvSizeT("AH_BENCH_MATRIX_REQUESTS", 4);
  const std::size_t reps = EnvSizeT("AH_BENCH_REPS", 3);
  const bool cold = EnvSizeT("AH_BENCH_COLD", 0) != 0;
  const std::size_t hot_set = EnvSizeT("AH_BENCH_HOTSET", 512);
  const std::vector<std::string> backends = BackendsFromEnv();
  BenchJson json("fig_serve");

  PrintHeader("fig_serve — wire protocol v1 text vs v2 binary",
              "full serving stack on loopback TCP, pipelined clients "
              "(point / batch / matrix series; qps end-to-end; v1 and v2 "
              "checksums must match bit-for-bit)");

  std::size_t mismatches = 0;
  const std::size_t num_datasets = BenchDatasetCountFromEnv(1);
  for (const PreparedDataset& d : PrepareDatasets(num_datasets)) {
    const std::vector<QueryPair> pairs =
        HotPairs(d.graph, point_pairs, hot_set);
    const std::vector<Series> series = {
        MakePointSeries(pairs),
        MakeBatchSeries(pairs, batch_size),
        MakeMatrixSeries(d.graph, matrix_side, matrix_requests),
    };

    TextTable table({"dataset", "backend", "series", "queries", "v1 qps",
                     "v2 qps", "v2/v1", "v1 us/q", "v2 us/q", "checksum"});
    for (const std::string& backend : backends) {
      Timer build;
      auto registry = std::make_shared<IndexRegistry>(
          d.graph, std::vector<std::string>{backend});
      // Cache sized to hold every distinct key in the workload so the
      // timed passes run at hit steady state (AH_BENCH_COLD=1 turns it
      // off). Admission sized so the pipelining window never sheds.
      ServerConfig config;
      config.cache_capacity = cold ? 0 : (1u << 18);
      config.admission_capacity = 4 * kWindow;
      config.admission_per_client = 0;
      config.request_timeout = std::chrono::milliseconds(0);
      config.max_batch = std::max<std::size_t>(batch_size, 4096);
      config.max_matrix_locations =
          std::max<std::size_t>(matrix_side, 512);
      ServerStack stack(registry, config);
      TcpServer tcp(stack, TcpServerConfig{});
      std::string error;
      if (!tcp.Start(&error)) {
        std::printf("!! %s/%s cannot start server: %s\n", d.spec.name.c_str(),
                    backend.c_str(), error.c_str());
        ++mismatches;
        continue;
      }
      std::printf("[build] %-10s %.2fs, serving on 127.0.0.1:%u\n",
                  backend.c_str(), build.Seconds(), tcp.Port());
      std::fflush(stdout);

      for (const Series& s : series) {
        // "OK d <dist>" skips 2 tokens, "OK b <n> ..." 3, "OK m <ns> <nt>" 4.
        const std::size_t skip = s.name == "point"   ? 2
                                 : s.name == "batch" ? 3
                                                     : 4;
        if (!cold) {
          // Untimed warming pass: fills the cache so both timed protocols
          // measure the same hit-steady-state serve path.
          double warm_seconds = 0;
          Dist warm_checksum = 0;
          if (!RunV1Once(tcp.Port(), s, skip, &warm_seconds,
                         &warm_checksum)) {
            std::printf("!! %s/%s/%s warming pass failed\n",
                        d.spec.name.c_str(), backend.c_str(), s.name.c_str());
            ++mismatches;
            continue;
          }
        }
        const RunResult v1 = RunSeries(reps, [&](double* sec, Dist* sum) {
          return RunV1Once(tcp.Port(), s, skip, sec, sum);
        });
        const RunResult v2 = RunSeries(reps, [&](double* sec, Dist* sum) {
          return RunV2Once(tcp.Port(), s, sec, sum);
        });
        if (!v1.ok || !v2.ok || v1.checksum != v2.checksum) {
          std::printf("!! %s/%s/%s checksum mismatch: v1 %s%llu, v2 %s%llu\n",
                      d.spec.name.c_str(), backend.c_str(), s.name.c_str(),
                      v1.ok ? "" : "(failed) ",
                      static_cast<unsigned long long>(v1.checksum),
                      v2.ok ? "" : "(failed) ",
                      static_cast<unsigned long long>(v2.checksum));
          ++mismatches;
          continue;
        }
        const double v1_qps =
            v1.best_seconds > 0 ? s.queries / v1.best_seconds : 0;
        const double v2_qps =
            v2.best_seconds > 0 ? s.queries / v2.best_seconds : 0;
        const double speedup = v1_qps > 0 ? v2_qps / v1_qps : 0;
        const double v1_us = v1.best_seconds / s.queries * 1e6;
        const double v2_us = v2.best_seconds / s.queries * 1e6;
        table.AddRow({d.spec.name, backend, s.name,
                      std::to_string(s.queries), Fmt("%.0f", v1_qps),
                      Fmt("%.0f", v2_qps), Fmt("%.2fx", speedup),
                      Fmt("%.2f", v1_us), Fmt("%.2f", v2_us),
                      std::to_string(v1.checksum)});
        const std::string base =
            d.spec.name + "/" + backend + "/" + s.name + "/";
        json.AddSeries(base + "v1", v1_qps, v1_us, v1_us, v1.checksum);
        json.AddSeries(base + "v2", v2_qps, v2_us, v2_us, v2.checksum,
                       {{"speedup_vs_v1", speedup}});
      }
      tcp.Stop();
    }
    table.Print();
  }

  if (mismatches > 0) {
    std::printf("\n!! %zu series failed cross-protocol verification\n",
                mismatches);
    return 1;
  }
  if (!json.WriteToEnvPath()) return 1;
  return 0;
}
