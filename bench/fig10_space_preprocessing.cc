// Figure 10: index space (MB) and preprocessing time (seconds) vs. the
// number of nodes n, for SILC / CH / FC / AH.
//
// Expected shape (paper): SILC super-linear in both space and time (dropped
// beyond a size cutoff); AH linear space, near-linear preprocessing; CH the
// cheapest on both axes. FC (§3.3, quadratic-ish preprocessing) is also
// capped by size; its space report includes the grid stack and the shortcut
// midpoint/unpack tables.
#include "bench_common.h"
#include "ch/ch_index.h"
#include "core/ah_index.h"
#include "fc/fc_index.h"
#include "silc/silc_index.h"

int main() {
  using namespace ah;
  using namespace ah::bench;
  PrintHeader("Figure 10 — Space Overhead and Preprocessing Time vs. n",
              "index size (MB) and build time (s) per method and dataset");

  const std::size_t count = BenchDatasetCountFromEnv(5);
  const std::size_t silc_max = EnvSizeT("AH_BENCH_SILC_MAX", 12000);
  const std::size_t fc_max = EnvSizeT("AH_BENCH_FC_MAX", 12000);
  constexpr double kMb = 1024.0 * 1024.0;

  TextTable table({"dataset", "n", "AH MB", "CH MB", "FC MB", "SILC MB",
                   "AH s", "CH s", "FC s", "SILC s", "AH shortcuts/n"});
  for (const PreparedDataset& d : PrepareDatasets(count)) {
    const Graph& g = d.graph;
    Timer timer;
    ChIndex ch = ChIndex::Build(g);
    const double ch_s = timer.Seconds();
    timer.Restart();
    AhIndex ah = AhIndex::Build(g);
    const double ah_s = timer.Seconds();

    std::string fc_mb = "-";
    std::string fc_s = "-";
    if (g.NumNodes() <= fc_max) {
      timer.Restart();
      FcIndex fc = FcIndex::Build(g);
      fc_s = TextTable::Num(timer.Seconds(), 2);
      fc_mb = TextTable::Num(static_cast<double>(fc.SizeBytes()) / kMb, 2);
    }

    std::string silc_mb = "-";
    std::string silc_s = "-";
    if (g.NumNodes() <= silc_max) {
      timer.Restart();
      SilcIndex silc = SilcIndex::Build(g);
      silc_s = TextTable::Num(timer.Seconds(), 2);
      silc_mb = TextTable::Num(static_cast<double>(silc.SizeBytes()) / kMb, 2);
    }

    table.AddRow(
        {d.spec.name,
         TextTable::Int(static_cast<long long>(g.NumNodes())),
         TextTable::Num(static_cast<double>(ah.SizeBytes()) / kMb, 2),
         TextTable::Num(static_cast<double>(ch.SizeBytes()) / kMb, 2),
         fc_mb, silc_mb, TextTable::Num(ah_s, 2), TextTable::Num(ch_s, 2),
         fc_s, silc_s,
         TextTable::Num(static_cast<double>(ah.build_stats().shortcuts) /
                            static_cast<double>(g.NumNodes()),
                        2)});
    std::printf("[done] %s\n", d.spec.name.c_str());
    std::fflush(stdout);
  }
  std::printf("\n");
  table.Print();
  std::printf(
      "\nPaper shape check: SILC MB/n and s/n grow with n (super-linear);\n"
      "FC s/n grows too (quadratic-ish preprocessing, §3.3); AH MB/n\n"
      "roughly constant (linear space); CH smallest and fastest.\n");
  return 0;
}
