// Machine-readable bench output: each bench binary can mirror its table into
// a BENCH_*.json file for the CI perf gate (tools/check_bench_baseline.py).
// Opt-in via the AH_BENCH_JSON env var (a file path); without it, nothing is
// written. One series entry per table cell: a stable "/"-joined name
// (<dataset>/<backend>/<kind>/t<threads>), throughput, latency quantiles,
// and the determinism checksum the gate fails on when it drifts.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <string>
#include <utility>
#include <vector>

#include "util/types.h"

namespace ah::bench {

class BenchJson {
 public:
  explicit BenchJson(std::string bench_name)
      : bench_name_(std::move(bench_name)) {}

  /// Adds one series entry. `extras` are additional numeric fields (e.g.
  /// {"speedup_vs_batch", 14.2}).
  void AddSeries(const std::string& name, double qps, double p50_us,
                 double p99_us, Dist checksum,
                 const std::vector<std::pair<std::string, double>>& extras =
                     {}) {
    std::string entry = "    {\"name\": \"" + name + "\"";
    entry += ", \"qps\": " + Num(qps);
    entry += ", \"p50_us\": " + Num(p50_us);
    entry += ", \"p99_us\": " + Num(p99_us);
    entry += ", \"checksum\": " + std::to_string(checksum);
    for (const auto& [key, value] : extras) {
      entry += ", \"" + key + "\": " + Num(value);
    }
    entry += "}";
    series_.push_back(std::move(entry));
  }

  /// Writes the collected series to `path`. Returns false on I/O failure.
  bool WriteFile(const std::string& path) const {
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (f == nullptr) return false;
    std::fprintf(f, "{\n  \"bench\": \"%s\",\n  \"series\": [\n",
                 bench_name_.c_str());
    for (std::size_t i = 0; i < series_.size(); ++i) {
      std::fprintf(f, "%s%s\n", series_[i].c_str(),
                   i + 1 < series_.size() ? "," : "");
    }
    std::fprintf(f, "  ]\n}\n");
    return std::fclose(f) == 0;
  }

  /// Writes to $AH_BENCH_JSON when set; returns false only on I/O failure.
  bool WriteToEnvPath() const {
    const char* path = std::getenv("AH_BENCH_JSON");
    if (path == nullptr || *path == '\0') return true;
    const bool ok = WriteFile(path);
    std::printf("%s bench json to %s\n", ok ? "wrote" : "FAILED to write",
                path);
    return ok;
  }

 private:
  static std::string Num(double v) {
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.3f", v);
    return buf;
  }

  std::string bench_name_;
  std::vector<std::string> series_;
};

}  // namespace ah::bench
