// Shared plumbing for the figure/table benches: dataset preparation at the
// configured scale, query timing, and result verification.
//
// Every bench prints the rows/series of one table or figure of the paper.
// Scale knobs (environment):
//   AH_BENCH_SCALE    — tiny | small | default (1/16) | large | full | <frac>
//   AH_BENCH_DATASETS — how many catalog datasets to cover (default varies).
#pragma once

#include <cstdio>
#include <string>
#include <utility>
#include <vector>

#include "gen/catalog.h"
#include "graph/graph.h"
#include "util/table.h"
#include "util/timer.h"
#include "util/types.h"
#include "workload/workload.h"

namespace ah::bench {

inline void PrintHeader(const std::string& title, const std::string& what) {
  std::printf("\n================================================================\n");
  std::printf("%s\n%s\n", title.c_str(), what.c_str());
  std::printf("scale=%.5f (AH_BENCH_SCALE), datasets=%zu (AH_BENCH_DATASETS)\n",
              BenchScaleFromEnv(), BenchDatasetCountFromEnv(0));
  std::printf("================================================================\n");
}

/// "Qi" row label for a query set. Built with append rather than operator+
/// (GCC 12's -Wrestrict false-positives on `const char* + std::string&&`
/// inlined into large mains, and the tree builds with -Werror).
inline std::string QuerySetLabel(int index) {
  std::string label = "Q";
  label += std::to_string(index);
  return label;
}

struct PreparedDataset {
  DatasetSpec spec;
  Graph graph;
};

/// Generates the first `count` catalog datasets at the env-configured scale.
inline std::vector<PreparedDataset> PrepareDatasets(std::size_t count) {
  const double scale = BenchScaleFromEnv();
  std::vector<PreparedDataset> out;
  const auto& catalog = PaperDatasets();
  for (std::size_t i = 0; i < count && i < catalog.size(); ++i) {
    Timer timer;
    PreparedDataset d{catalog[i], MakeScaledDataset(catalog[i], scale)};
    std::printf("[prep] %-5s n=%-9zu m=%-9zu (%.1fs)\n", d.spec.name.c_str(),
                d.graph.NumNodes(), d.graph.NumArcs(), timer.Seconds());
    std::fflush(stdout);
    out.push_back(std::move(d));
  }
  return out;
}

/// Times `query(s, t)` over all pairs; returns (avg microseconds, checksum).
/// The checksum (sum of distances) lets callers assert that two methods
/// computed identical results without storing every answer.
template <typename QueryFn>
std::pair<double, Dist> TimeQueries(
    const std::vector<std::pair<NodeId, NodeId>>& pairs, QueryFn&& query) {
  if (pairs.empty()) return {0.0, 0};
  Dist checksum = 0;
  Timer timer;
  for (const auto& [s, t] : pairs) {
    const Dist d = query(s, t);
    if (d != kInfDist) checksum += d;
  }
  const double avg_us = timer.Micros() / static_cast<double>(pairs.size());
  return {avg_us, checksum};
}

/// Workload sized for bench runs (paper: 10000 pairs/set; scaled down so
/// the Dijkstra baseline stays affordable).
inline Workload BenchWorkload(const Graph& g, std::size_t pairs_per_set) {
  WorkloadParams params;
  params.pairs_per_set = pairs_per_set;
  params.seed = 20130624;  // SIGMOD'13.
  return GenerateWorkload(g, params);
}

inline std::size_t EnvSizeT(const char* name, std::size_t fallback) {
  if (const char* raw = std::getenv(name)) {
    char* end = nullptr;
    const long v = std::strtol(raw, &end, 10);
    if (end != raw && v > 0) return static_cast<std::size_t>(v);
  }
  return fallback;
}

}  // namespace ah::bench
