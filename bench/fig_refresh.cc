// fig_refresh: time-to-fresh-epoch vs delta size — the incremental-repair
// figure. Road traffic moves arc weights while the topology stays put; the
// serving question is how fast a live index can be made fresh again. For
// each backend with a frozen-order rebuild path (ch / ah / hl), this bench
// perturbs a growing fraction of arcs (perturb/traffic_feed.h, seeded), then
// rebuilds the index over the updated graph two ways:
//
//   scratch — a from-scratch build (greedy ordering + contraction), the
//             pre-incremental reload cost;
//   frozen  — DistanceOracle-level frozen-order re-contraction: reuse the
//             live epoch's node order / hub order and recompute only the
//             weight-dependent parts (shortcut weights, witness checks,
//             labels, gateways).
//
// Witness-checked contraction is exact for ANY total order, so both builds
// must answer every probe query identically — the bench fails (exit 1) on
// any probe-checksum mismatch. The headline number is the speedup column:
// frozen-order repair is the reason a reload under churn is cheap
// (target >= 5x on ch/ah at small deltas).
//
// Env knobs (on top of bench_common.h's AH_BENCH_SCALE / AH_BENCH_DATASETS):
//   AH_BENCH_PAIRS    — probe queries per build (default 200).
//   AH_BENCH_REPS     — rebuild repetitions per cell, best taken (default 2).
//   AH_BENCH_BACKENDS — comma-separated subset of ch,ah,hl (default: all).
//   AH_BENCH_JSON     — path for the machine-readable series JSON
//                       (bench_json.h; the CI perf gate input). The series
//                       checksum is the probe checksum — identical across
//                       machines by construction — and "qps" is frozen
//                       rebuilds/second, so the gate's throughput warning
//                       tracks repair latency.
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <string_view>
#include <vector>

#include "bench_common.h"
#include "bench_json.h"
#include "ch/ch_index.h"
#include "core/ah_index.h"
#include "core/ah_query.h"
#include "graph/weight_update.h"
#include "hl/hl_index.h"
#include "perturb/traffic_feed.h"

namespace {

using namespace ah;
using namespace ah::bench;

/// Perturbed-arc fractions the series sweeps (delta size axis).
constexpr double kDeltaFractions[] = {0.001, 0.01, 0.05};

const char* FractionLabel(double frac) {
  if (frac == 0.001) return "d0.1pct";
  if (frac == 0.01) return "d1pct";
  return "d5pct";
}

/// Comma-separated AH_BENCH_BACKENDS subset of the incremental backends.
std::vector<std::string> RefreshBackendsFromEnv() {
  static const std::vector<std::string> kAll = {"ch", "ah", "hl"};
  std::vector<std::string> filter;
  if (const char* raw = std::getenv("AH_BENCH_BACKENDS")) {
    std::string_view rest(raw);
    while (!rest.empty()) {
      const std::size_t comma = rest.find(',');
      const std::string_view name = rest.substr(0, comma);
      if (!name.empty()) filter.emplace_back(name);
      if (comma == std::string_view::npos) break;
      rest.remove_prefix(comma + 1);
    }
  }
  std::vector<std::string> backends;
  for (const std::string& name : kAll) {
    if (filter.empty() ||
        std::find(filter.begin(), filter.end(), name) != filter.end()) {
      backends.push_back(name);
    }
  }
  return backends;
}

std::vector<std::pair<NodeId, NodeId>> ProbePairs(const Graph& g,
                                                  std::size_t count) {
  Rng rng(20130624);
  std::vector<std::pair<NodeId, NodeId>> pairs;
  pairs.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    pairs.emplace_back(static_cast<NodeId>(rng.Uniform(g.NumNodes())),
                       static_cast<NodeId>(rng.Uniform(g.NumNodes())));
  }
  return pairs;
}

struct RepairCell {
  double scratch_seconds = 0;  ///< Best from-scratch build time.
  double frozen_seconds = 0;   ///< Best frozen-order rebuild time.
  Dist scratch_checksum = 0;
  Dist frozen_checksum = 0;
};

/// Times `build()` (from scratch) and `repair()` (frozen order) over the
/// updated graph, best of `reps`, and probes both results.
template <typename Index, typename BuildFn, typename RepairFn,
          typename ProbeFn>
RepairCell RunRepairCell(std::size_t reps, const BuildFn& build,
                         const RepairFn& repair, const ProbeFn& probe) {
  RepairCell cell;
  for (std::size_t rep = 0; rep < reps; ++rep) {
    Timer timer;
    Index scratch = build();
    const double scratch_seconds = timer.Seconds();
    timer.Restart();
    Index frozen = repair();
    const double frozen_seconds = timer.Seconds();
    if (rep == 0 || scratch_seconds < cell.scratch_seconds) {
      cell.scratch_seconds = scratch_seconds;
    }
    if (rep == 0 || frozen_seconds < cell.frozen_seconds) {
      cell.frozen_seconds = frozen_seconds;
    }
    if (rep == 0) {
      cell.scratch_checksum = probe(scratch);
      cell.frozen_checksum = probe(frozen);
    }
  }
  return cell;
}

}  // namespace

int main() {
  const std::size_t pairs = EnvSizeT("AH_BENCH_PAIRS", 200);
  const std::size_t reps = EnvSizeT("AH_BENCH_REPS", 2);
  const std::vector<std::string> backends = RefreshBackendsFromEnv();
  BenchJson json("fig_refresh");

  PrintHeader("fig_refresh — time-to-fresh-epoch vs delta size",
              "frozen-order re-contraction vs from-scratch rebuild after "
              "perturbing 0.1% / 1% / 5% of arcs (identical probe answers "
              "required; speedup = scratch / frozen)");

  std::size_t mismatches = 0;
  for (const PreparedDataset& d : PrepareDatasets(BenchDatasetCountFromEnv(1))) {
    const Graph& g = d.graph;
    const std::vector<std::pair<NodeId, NodeId>> probes = ProbePairs(g, pairs);

    // The live epoch: one from-scratch build per backend, reused as the
    // frozen-order donor for every delta size (the serving situation — the
    // order was computed once, long ago, on the original weights).
    Timer build_timer;
    ChIndex live_ch = ChIndex::Build(g);
    std::printf("[build] ch   %.2fs\n", build_timer.Seconds());
    build_timer.Restart();
    AhIndex live_ah = AhIndex::Build(g);
    std::printf("[build] ah   %.2fs\n", build_timer.Seconds());
    build_timer.Restart();
    HlIndex live_hl = HlIndex::Build(g);
    std::printf("[build] hl   %.2fs\n", build_timer.Seconds());
    std::fflush(stdout);

    TextTable table({"dataset", "backend", "delta", "arcs", "scratch ms",
                     "frozen ms", "speedup", "checksum"});
    for (const double frac : kDeltaFractions) {
      TrafficFeedParams feed_params;
      feed_params.batch_fraction = frac;
      TrafficFeed feed(g, feed_params);
      const std::vector<WeightDelta> batch = feed.NextBatch();
      Graph updated = g;
      ApplyWeightDeltas(&updated, batch);

      for (const std::string& backend : backends) {
        RepairCell cell;
        if (backend == "ch") {
          const auto probe = [&](const ChIndex& index) {
            ChQuery query(index);
            return TimeQueries(probes, [&](NodeId s, NodeId t) {
                     return query.Distance(s, t);
                   }).second;
          };
          cell = RunRepairCell<ChIndex>(
              reps, [&] { return ChIndex::Build(updated); },
              [&] { return ChIndex::RebuildWithFrozenOrder(updated, live_ch); },
              probe);
        } else if (backend == "ah") {
          const auto probe = [&](const AhIndex& index) {
            AhQuery query(index);
            return TimeQueries(probes, [&](NodeId s, NodeId t) {
                     return query.Distance(s, t);
                   }).second;
          };
          cell = RunRepairCell<AhIndex>(
              reps, [&] { return AhIndex::Build(updated); },
              [&] { return AhIndex::RebuildWithFrozenOrder(updated, live_ah); },
              probe);
        } else {
          const auto probe = [&](const HlIndex& index) {
            return TimeQueries(probes, [&](NodeId s, NodeId t) {
                     return index.Distance(s, t);
                   }).second;
          };
          cell = RunRepairCell<HlIndex>(
              reps, [&] { return HlIndex::Build(updated); },
              [&] { return HlIndex::RebuildWithFrozenOrder(updated, live_hl); },
              probe);
        }

        if (cell.frozen_checksum != cell.scratch_checksum) {
          std::printf("!! %s %s: frozen checksum %llu != scratch %llu\n",
                      backend.c_str(), FractionLabel(frac),
                      static_cast<unsigned long long>(cell.frozen_checksum),
                      static_cast<unsigned long long>(cell.scratch_checksum));
          ++mismatches;
        }
        const double speedup = cell.frozen_seconds > 0
                                   ? cell.scratch_seconds / cell.frozen_seconds
                                   : 0;
        table.AddRow(
            {d.spec.name, backend, FractionLabel(frac),
             std::to_string(feed.BatchSize()),
             TextTable::Num(cell.scratch_seconds * 1e3, 2),
             TextTable::Num(cell.frozen_seconds * 1e3, 2),
             TextTable::Num(speedup, 2),
             TextTable::Int(static_cast<long long>(cell.frozen_checksum))});
        json.AddSeries(
            d.spec.name + "/" + backend + "/refresh/" + FractionLabel(frac),
            cell.frozen_seconds > 0 ? 1.0 / cell.frozen_seconds : 0,
            cell.frozen_seconds * 1e6, cell.frozen_seconds * 1e6,
            cell.frozen_checksum,
            {{"scratch_s", cell.scratch_seconds},
             {"frozen_s", cell.frozen_seconds},
             {"speedup", speedup}});
      }
    }
    table.Print();
    std::fflush(stdout);
  }

  if (mismatches != 0) {
    std::printf("\nFAIL: %zu probe-checksum mismatches between frozen-order "
                "and from-scratch builds\n",
                mismatches);
    return 1;
  }
  if (!json.WriteToEnvPath()) return 1;
  std::printf(
      "\nfrozen-order repair answered every probe identically to the "
      "from-scratch build at every delta size\n");
  return 0;
}
