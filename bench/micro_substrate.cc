// Micro-benchmarks (google-benchmark) for the substrate data structures the
// indexes are built from: heap operations, CSR scans, grid math, Morton
// codes, local Dijkstra, and contraction.
#include <benchmark/benchmark.h>

#include "gen/road_gen.h"
#include "geo/grid.h"
#include "hier/contraction.h"
#include "routing/dijkstra.h"
#include "silc/quadtree.h"
#include "util/indexed_heap.h"
#include "util/rng.h"

namespace ah {
namespace {

const Graph& BenchGraph() {
  static const Graph* graph = [] {
    RoadGenParams p;
    p.cols = p.rows = 48;
    p.seed = 7;
    return new Graph(GenerateRoadNetwork(p));
  }();
  return *graph;
}

void BM_IndexedHeapPushPop(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  IndexedHeap heap(n);
  Rng rng(1);
  std::vector<Dist> keys(n);
  for (std::size_t i = 0; i < n; ++i) keys[i] = rng.Uniform(1 << 20);
  for (auto _ : state) {
    heap.Clear();
    for (std::size_t i = 0; i < n; ++i) {
      heap.PushOrDecrease(static_cast<std::uint32_t>(i), keys[i]);
    }
    while (!heap.Empty()) benchmark::DoNotOptimize(heap.PopMin());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * n);
}
BENCHMARK(BM_IndexedHeapPushPop)->Arg(1024)->Arg(16384);

void BM_IndexedHeapDecreaseKey(benchmark::State& state) {
  const std::size_t n = 4096;
  IndexedHeap heap(n);
  Rng rng(2);
  for (auto _ : state) {
    state.PauseTiming();
    heap.Clear();
    for (std::size_t i = 0; i < n; ++i) {
      heap.PushOrDecrease(static_cast<std::uint32_t>(i),
                          1000000 + rng.Uniform(1000000));
    }
    state.ResumeTiming();
    for (std::size_t i = 0; i < n; ++i) {
      heap.PushOrDecrease(static_cast<std::uint32_t>(i), rng.Uniform(1000000));
    }
  }
}
BENCHMARK(BM_IndexedHeapDecreaseKey);

void BM_CsrOutArcScan(benchmark::State& state) {
  const Graph& g = BenchGraph();
  for (auto _ : state) {
    std::uint64_t acc = 0;
    for (NodeId v = 0; v < g.NumNodes(); ++v) {
      for (const Arc& a : g.OutArcs(v)) acc += a.weight;
    }
    benchmark::DoNotOptimize(acc);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(g.NumArcs()));
}
BENCHMARK(BM_CsrOutArcScan);

void BM_GridCellOf(benchmark::State& state) {
  const Graph& g = BenchGraph();
  const SquareGrid grid = SquareGrid::Covering(g.BoundingBox(), 1024);
  for (auto _ : state) {
    std::int64_t acc = 0;
    for (NodeId v = 0; v < g.NumNodes(); ++v) {
      const Cell c = grid.CellOf(g.Coord(v));
      acc += c.cx + c.cy;
    }
    benchmark::DoNotOptimize(acc);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(g.NumNodes()));
}
BENCHMARK(BM_GridCellOf);

void BM_MortonEncode(benchmark::State& state) {
  Rng rng(3);
  std::vector<std::pair<std::uint32_t, std::uint32_t>> points(4096);
  for (auto& p : points) {
    p = {static_cast<std::uint32_t>(rng.Next()),
         static_cast<std::uint32_t>(rng.Next())};
  }
  for (auto _ : state) {
    std::uint64_t acc = 0;
    for (const auto& [x, y] : points) acc ^= MortonInterleave32(x, y);
    benchmark::DoNotOptimize(acc);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(points.size()));
}
BENCHMARK(BM_MortonEncode);

void BM_DijkstraFull(benchmark::State& state) {
  const Graph& g = BenchGraph();
  Dijkstra dijkstra(g);
  Rng rng(4);
  for (auto _ : state) {
    dijkstra.Run(static_cast<NodeId>(rng.Uniform(g.NumNodes())));
    benchmark::DoNotOptimize(dijkstra.SettledNodes().size());
  }
}
BENCHMARK(BM_DijkstraFull);

void BM_ContractGraph(benchmark::State& state) {
  RoadGenParams p;
  p.cols = p.rows = 16;
  p.seed = 9;
  const Graph g = GenerateRoadNetwork(p);
  const auto arcs = ArcsOf(g);
  for (auto _ : state) {
    ContractionEngine engine(g.NumNodes(), arcs);
    for (NodeId v = 0; v < g.NumNodes(); ++v) engine.Contract(v);
    benchmark::DoNotOptimize(engine.EmittedArcs().size());
  }
}
BENCHMARK(BM_ContractGraph);

}  // namespace
}  // namespace ah

BENCHMARK_MAIN();
