// Extension bench (beyond the paper's evaluated set): ALT — A* with
// landmarks ([12] in the paper's related work) — against Dijkstra, CH and
// AH on one dataset. Shows where goal-directed search lands between the
// baseline and the hierarchy methods.
#include "alt/alt_index.h"
#include "bench_common.h"
#include "ch/ch_index.h"
#include "core/ah_query.h"
#include "routing/dijkstra.h"

int main() {
  using namespace ah;
  using namespace ah::bench;
  PrintHeader("Extension — ALT (A*, Landmarks, Triangle inequality)",
              "goal-directed search vs. the paper's methods");

  const std::size_t count = BenchDatasetCountFromEnv(2);
  const std::size_t pairs = EnvSizeT("AH_BENCH_PAIRS", 80);
  const std::size_t landmarks = EnvSizeT("AH_BENCH_LANDMARKS", 8);

  for (const PreparedDataset& d : PrepareDatasets(count)) {
    const Graph& g = d.graph;
    const Workload workload = BenchWorkload(g, pairs);

    Timer timer;
    AltParams alt_params;
    alt_params.num_landmarks = landmarks;
    AltIndex alt = AltIndex::Build(g, alt_params);
    std::printf("[build] ALT %.1fs (%zu landmarks, %.1f MB)\n",
                timer.Seconds(), alt.NumLandmarks(),
                static_cast<double>(alt.SizeBytes()) / (1024.0 * 1024.0));
    ChIndex ch = ChIndex::Build(g);
    AhIndex ah = AhIndex::Build(g);

    Dijkstra dijkstra(g);
    AltQuery alt_query(g, alt);
    ChQuery ch_query(ch);
    AhQuery ah_query(ah);

    std::printf("\n--- %s (n = %s) — distance queries ---\n",
                d.spec.name.c_str(),
                TextTable::Int(static_cast<long long>(g.NumNodes())).c_str());
    TextTable table({"set", "pairs", "AH (us)", "CH (us)", "ALT (us)",
                     "Dijkstra (us)", "ok"});
    for (const QuerySet& qs : workload.sets) {
      const auto [ah_us, ah_sum] = TimeQueries(
          qs.pairs, [&](NodeId s, NodeId t) { return ah_query.Distance(s, t); });
      const auto [ch_us, ch_sum] = TimeQueries(
          qs.pairs, [&](NodeId s, NodeId t) { return ch_query.Distance(s, t); });
      const auto [alt_us, alt_sum] = TimeQueries(
          qs.pairs, [&](NodeId s, NodeId t) { return alt_query.Distance(s, t); });
      const auto [dij_us, dij_sum] = TimeQueries(
          qs.pairs, [&](NodeId s, NodeId t) { return dijkstra.Distance(s, t); });
      const bool ok =
          ah_sum == dij_sum && ch_sum == dij_sum && alt_sum == dij_sum;
      table.AddRow({QuerySetLabel(qs.index),
                    std::to_string(qs.pairs.size()), TextTable::Num(ah_us, 2),
                    TextTable::Num(ch_us, 2), TextTable::Num(alt_us, 2),
                    TextTable::Num(dij_us, 2), ok ? "yes" : "MISMATCH"});
    }
    table.Print();
    std::fflush(stdout);
  }
  std::printf(
      "\nShape check: ALT sits between Dijkstra and the hierarchy methods —\n"
      "goal direction prunes, but far queries still scan the corridor.\n");
  return 0;
}
