// Figure 3: arterial dimension of road networks — mean / 90% / 99% quantile
// / max number of arterial edges per 4×4-cell window, as a function of the
// grid resolution r (the grid has 2^r × 2^r cells).
//
// The paper's claim (Assumption 1): these stay small and essentially flat in
// both r and network size. Expected shape here: max below ~100, quantiles
// far lower, no growth trend with r or n.
#include "arterial/dimension.h"
#include "bench_common.h"

int main() {
  using namespace ah;
  using namespace ah::bench;
  PrintHeader("Figure 3 — Arterial Dimensions of Road Networks",
              "arterial edges per 4x4 window vs. grid resolution r");

  const std::size_t count = BenchDatasetCountFromEnv(4);
  const int r_lo = static_cast<int>(EnvSizeT("AH_BENCH_RMIN", 3));
  const int r_hi = static_cast<int>(EnvSizeT("AH_BENCH_RMAX", 10));
  const std::size_t cap = EnvSizeT("AH_BENCH_FIG3_WINDOWS", 1500);

  for (const PreparedDataset& d : PrepareDatasets(count)) {
    Timer timer;
    const auto rows =
        MeasureArterialDimension(d.graph, r_lo, r_hi, cap, /*seed=*/7);
    std::printf("\n--- %s (n = %s) ---\n", d.spec.name.c_str(),
                TextTable::Int(static_cast<long long>(d.graph.NumNodes()))
                    .c_str());
    TextTable table({"r", "windows", "sampled", "mean", "90% quantile",
                     "99% quantile", "max"});
    for (const DimensionRow& row : rows) {
      table.AddRow({std::to_string(row.resolution),
                    TextTable::Int(static_cast<long long>(row.windows)),
                    TextTable::Int(static_cast<long long>(row.sampled)),
                    TextTable::Num(row.mean, 2), TextTable::Num(row.q90, 0),
                    TextTable::Num(row.q99, 0), TextTable::Num(row.max, 0)});
    }
    table.Print();
    std::printf("(measured in %.1fs)\n", timer.Seconds());
    std::fflush(stdout);
  }
  std::printf(
      "\nPaper shape check: max <= ~100, 90%%/99%% quantiles <= ~60, mean\n"
      "<= ~22, regardless of resolution and dataset size.\n");
  return 0;
}
