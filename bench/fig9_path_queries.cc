// Figure 9: average shortest-path-query time (microseconds) per query set
// Q1..Q10, per dataset, for Dijkstra / SILC / CH / FC / HL / AH.
//
// Expected shape (paper): AH fastest; path queries strictly more expensive
// than distance queries for AH and CH (distance search + O(k) unpacking);
// SILC and Dijkstra cost the same as their distance queries (they compute
// the path anyway).
//
// FC is reported twice: native midpoint unpacking (distance search + O(k)
// expansion, like CH/AH) against the pre-midpoint probe baseline that
// recovers each hop with O(Δ) extra distance queries — the gap is the cost
// of carrying no shortcut midpoints.
#include <algorithm>
#include <optional>

#include "api/distance_oracle.h"
#include "bench_common.h"
#include "bench_json.h"
#include "ch/ch_index.h"
#include "core/ah_query.h"
#include "fc/fc_index.h"
#include "hl/hl_index.h"
#include "routing/dijkstra.h"
#include "silc/silc_index.h"

int main() {
  using namespace ah;
  using namespace ah::bench;
  PrintHeader("Figure 9 — Efficiency of Shortest Path Queries vs. Query Set",
              "avg running time (microsec) per query set Q1..Q10");

  const std::size_t count = BenchDatasetCountFromEnv(4);
  const std::size_t pairs = EnvSizeT("AH_BENCH_PAIRS", 100);
  const std::size_t silc_max = EnvSizeT("AH_BENCH_SILC_MAX", 8000);
  const std::size_t fc_max = EnvSizeT("AH_BENCH_FC_MAX", 12000);
  // The probe baseline is O(k·Δ) distance queries per path — cap its pairs
  // so the bench stays affordable (averages remain comparable).
  const std::size_t fc_probe_pairs = EnvSizeT("AH_BENCH_FC_PROBE_PAIRS", 10);

  BenchJson json("fig9_path_queries");
  for (const PreparedDataset& d : PrepareDatasets(count)) {
    const Graph& g = d.graph;
    const Workload workload = BenchWorkload(g, pairs);

    ChIndex ch = ChIndex::Build(g);
    AhIndex ah = AhIndex::Build(g);
    HlIndex hl = HlIndex::Build(g);
    const bool run_silc = g.NumNodes() <= silc_max;
    SilcIndex silc;
    if (run_silc) silc = SilcIndex::Build(g);
    const bool run_fc = g.NumNodes() <= fc_max;
    FcIndex fc;
    if (run_fc) fc = FcIndex::Build(g);

    Dijkstra dijkstra(g);
    ChQuery ch_query(ch);
    AhQuery ah_query(ah);
    std::optional<FcQuery> fc_query;
    std::optional<FcQuery> fc_probe;
    if (run_fc) {
      fc_query.emplace(fc, FcQueryOptions{.use_proximity = false});
      fc_probe.emplace(fc, FcQueryOptions{.use_proximity = false});
    }

    std::printf("\n--- %s (n = %s) — shortest path queries ---\n",
                d.spec.name.c_str(),
                TextTable::Int(static_cast<long long>(g.NumNodes())).c_str());
    TextTable table({"set", "pairs", "AH (us)", "CH (us)", "HL (us)",
                     "FC (us)", "FC probe (us)", "SILC (us)",
                     "Dijkstra (us)", "avg path edges"});
    double fc_speedup_sum = 0;
    std::size_t fc_speedup_sets = 0;
    for (const QuerySet& qs : workload.sets) {
      std::size_t edge_total = 0;
      const auto [ah_us, ah_sum] =
          TimeQueries(qs.pairs, [&](NodeId s, NodeId t) {
            const PathResult p = ah_query.Path(s, t);
            edge_total += p.NumEdges();
            return p.length;
          });
      const auto [ch_us, ch_sum] =
          TimeQueries(qs.pairs, [&](NodeId s, NodeId t) {
            return ch_query.Path(s, t).length;
          });
      const auto [hl_us, hl_sum] =
          TimeQueries(qs.pairs, [&](NodeId s, NodeId t) {
            return hl.Path(s, t).length;
          });
      const auto [dij_us, dij_sum] =
          TimeQueries(qs.pairs, [&](NodeId s, NodeId t) {
            const auto nodes = dijkstra.Path(s, t);
            return nodes.empty() ? kInfDist : dijkstra.DistTo(t);
          });
      std::string silc_cell = "-";
      if (run_silc) {
        const auto [silc_us, silc_sum] =
            TimeQueries(qs.pairs, [&](NodeId s, NodeId t) {
              return silc.Path(s, t).length;
            });
        silc_cell = TextTable::Num(silc_us, 2);
        if (silc_sum != dij_sum) {
          std::printf("!! SILC checksum mismatch on Q%d\n", qs.index);
        }
      }
      std::string fc_cell = "-";
      std::string fc_probe_cell = "-";
      if (run_fc) {
        const auto [fc_us, fc_sum] =
            TimeQueries(qs.pairs, [&](NodeId s, NodeId t) {
              return fc_query->Path(s, t).length;
            });
        fc_cell = TextTable::Num(fc_us, 2);
        if (fc_sum != dij_sum) {
          std::printf("!! FC checksum mismatch on Q%d\n", qs.index);
        }
        const std::vector<std::pair<NodeId, NodeId>> probe_pairs(
            qs.pairs.begin(),
            qs.pairs.begin() +
                std::min(fc_probe_pairs, qs.pairs.size()));
        const auto [probe_us, probe_sum] =
            TimeQueries(probe_pairs, [&](NodeId s, NodeId t) {
              // The pre-midpoint fallback: O(k·Δ) exact distance queries
              // per k-edge path (§2 reduction).
              return RecoverPathByDistanceProbes(
                         g, s, t,
                         [&](NodeId a, NodeId b) {
                           return fc_probe->Distance(a, b);
                         })
                  .length;
            });
        const auto [unused_us, expect_sum] =
            TimeQueries(probe_pairs, [&](NodeId s, NodeId t) {
              return dijkstra.Distance(s, t);
            });
        (void)unused_us;
        if (probe_sum != expect_sum) {
          std::printf("!! FC probe checksum mismatch on Q%d\n", qs.index);
        }
        fc_probe_cell = TextTable::Num(probe_us, 2);
        if (fc_us > 0) {
          fc_speedup_sum += probe_us / fc_us;
          ++fc_speedup_sets;
        }
      }
      if (ah_sum != dij_sum || ch_sum != dij_sum || hl_sum != dij_sum) {
        std::printf("!! checksum mismatch on Q%d\n", qs.index);
      }
      // Only the always-run backends feed the perf gate — SILC/FC are
      // size-gated, and a series that appears or vanishes with the dataset
      // cap is a hard baseline failure.
      const struct {
        const char* name;
        double us;
        Dist sum;
      } gate_series[] = {{"ah", ah_us, ah_sum},
                         {"ch", ch_us, ch_sum},
                         {"hl", hl_us, hl_sum}};
      for (const auto& s : gate_series) {
        json.AddSeries(d.spec.name + "/" + s.name + "/path/" +
                           QuerySetLabel(qs.index),
                       s.us > 0 ? 1e6 / s.us : 0, s.us, s.us, s.sum);
      }
      const double avg_edges =
          qs.pairs.empty() ? 0.0
                           : static_cast<double>(edge_total) /
                                 static_cast<double>(qs.pairs.size());
      table.AddRow({QuerySetLabel(qs.index),
                    std::to_string(qs.pairs.size()), TextTable::Num(ah_us, 2),
                    TextTable::Num(ch_us, 2), TextTable::Num(hl_us, 2),
                    fc_cell, fc_probe_cell, silc_cell,
                    TextTable::Num(dij_us, 2), TextTable::Num(avg_edges, 0)});
    }
    table.Print();
    if (fc_speedup_sets > 0) {
      std::printf("FC native vs probe speedup: %.1fx (mean over %zu sets)\n",
                  fc_speedup_sum / static_cast<double>(fc_speedup_sets),
                  fc_speedup_sets);
    }
    std::fflush(stdout);
  }
  std::printf(
      "\nPaper shape check: AH fastest; AH/CH/FC path queries cost more\n"
      "than their Figure-8 distance counterparts (distance + O(k)\n"
      "unpacking), while Dijkstra/SILC cost the same as in Figure 8. The\n"
      "FC probe column shows the O(k*Delta)-distance-query recovery FC\n"
      "needed before shortcut midpoints were stored. HL walks hub parent\n"
      "pointers (one binary search per hop, zero distance probes).\n");
  if (!json.WriteToEnvPath()) return 1;
  return 0;
}
