// Figure 9: average shortest-path-query time (microseconds) per query set
// Q1..Q10, per dataset, for Dijkstra / SILC / CH / AH.
//
// Expected shape (paper): AH fastest; path queries strictly more expensive
// than distance queries for AH and CH (distance search + O(k) unpacking);
// SILC and Dijkstra cost the same as their distance queries (they compute
// the path anyway).
#include "bench_common.h"
#include "ch/ch_index.h"
#include "core/ah_query.h"
#include "routing/dijkstra.h"
#include "silc/silc_index.h"

int main() {
  using namespace ah;
  using namespace ah::bench;
  PrintHeader("Figure 9 — Efficiency of Shortest Path Queries vs. Query Set",
              "avg running time (microsec) per query set Q1..Q10");

  const std::size_t count = BenchDatasetCountFromEnv(4);
  const std::size_t pairs = EnvSizeT("AH_BENCH_PAIRS", 100);
  const std::size_t silc_max = EnvSizeT("AH_BENCH_SILC_MAX", 8000);

  for (const PreparedDataset& d : PrepareDatasets(count)) {
    const Graph& g = d.graph;
    const Workload workload = BenchWorkload(g, pairs);

    ChIndex ch = ChIndex::Build(g);
    AhIndex ah = AhIndex::Build(g);
    const bool run_silc = g.NumNodes() <= silc_max;
    SilcIndex silc;
    if (run_silc) silc = SilcIndex::Build(g);

    Dijkstra dijkstra(g);
    ChQuery ch_query(ch);
    AhQuery ah_query(ah);

    std::printf("\n--- %s (n = %s) — shortest path queries ---\n",
                d.spec.name.c_str(),
                TextTable::Int(static_cast<long long>(g.NumNodes())).c_str());
    TextTable table({"set", "pairs", "AH (us)", "CH (us)", "SILC (us)",
                     "Dijkstra (us)", "avg path edges"});
    for (const QuerySet& qs : workload.sets) {
      std::size_t edge_total = 0;
      const auto [ah_us, ah_sum] =
          TimeQueries(qs.pairs, [&](NodeId s, NodeId t) {
            const PathResult p = ah_query.Path(s, t);
            edge_total += p.NumEdges();
            return p.length;
          });
      const auto [ch_us, ch_sum] =
          TimeQueries(qs.pairs, [&](NodeId s, NodeId t) {
            return ch_query.Path(s, t).length;
          });
      const auto [dij_us, dij_sum] =
          TimeQueries(qs.pairs, [&](NodeId s, NodeId t) {
            const auto nodes = dijkstra.Path(s, t);
            return nodes.empty() ? kInfDist : dijkstra.DistTo(t);
          });
      std::string silc_cell = "-";
      if (run_silc) {
        const auto [silc_us, silc_sum] =
            TimeQueries(qs.pairs, [&](NodeId s, NodeId t) {
              return silc.Path(s, t).length;
            });
        silc_cell = TextTable::Num(silc_us, 2);
        if (silc_sum != dij_sum) {
          std::printf("!! SILC checksum mismatch on Q%d\n", qs.index);
        }
      }
      if (ah_sum != dij_sum || ch_sum != dij_sum) {
        std::printf("!! checksum mismatch on Q%d\n", qs.index);
      }
      const double avg_edges =
          qs.pairs.empty() ? 0.0
                           : static_cast<double>(edge_total) /
                                 static_cast<double>(qs.pairs.size());
      table.AddRow({"Q" + std::to_string(qs.index),
                    std::to_string(qs.pairs.size()), TextTable::Num(ah_us, 2),
                    TextTable::Num(ch_us, 2), silc_cell,
                    TextTable::Num(dij_us, 2), TextTable::Num(avg_edges, 0)});
    }
    table.Print();
    std::fflush(stdout);
  }
  std::printf(
      "\nPaper shape check: AH fastest; AH/CH path queries cost more than\n"
      "their Figure-8 distance counterparts (distance + O(k) unpacking),\n"
      "while Dijkstra/SILC cost the same as in Figure 8.\n");
  return 0;
}
