// fig_throughput: aggregate query throughput and tail latency of one shared
// immutable index served to 1/2/4/8 threads through per-thread sessions
// (ConcurrentEngine over an epoch-versioned IndexRegistry) — the
// serving-side counterpart of the paper's per-query latency figures
// (Fig. 8/9).
//
// For every backend, three series: distance queries, path queries, and a
// swap-under-load distance series ("dist+swap") measured while the
// registry's background worker rebuilds the backend and hot-swaps the new
// epoch in — the p50/p99 delta between "dist" and "dist+swap" is the
// latency cost of a live reload. The reload is delta-free (no weight
// change queued), so the rebuild cost is real but answers (and checksums)
// stay comparable across all series cells. The index is built once per
// backend; the same batch of uniform random queries is answered at each
// thread count, reporting queries/sec, speedup vs the smallest configured
// thread count, and the p50/p99 per-query latency from the serving stack's
// log-linear histogram (server/request_stats.h). The checksum must be
// identical at every thread count (each query is answered independently, so
// results are positionally deterministic); any mismatch fails the run. Path
// checksums fold in the node count, so a same-length different-shape answer
// is caught too.
//
// Env knobs (on top of bench_common.h's AH_BENCH_SCALE / AH_BENCH_DATASETS):
//   AH_BENCH_PAIRS    — queries per batch (default 2000).
//   AH_BENCH_REPS     — batch repetitions per cell, best taken (default 3).
//   AH_BENCH_THREADS  — space-separated thread counts (default "1 2 4 8").
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "api/concurrent_engine.h"
#include "api/distance_oracle.h"
#include "api/index_registry.h"
#include "bench_common.h"
#include "server/request_stats.h"
#include "util/parallel.h"
#include "util/rng.h"
#include "util/table.h"
#include "util/timer.h"

namespace {

using namespace ah;
using namespace ah::bench;

// Sorted ascending and deduplicated, so the first (smallest) count is the
// speedup baseline even for a custom AH_BENCH_THREADS order.
std::vector<std::size_t> ThreadCountsFromEnv() {
  std::vector<std::size_t> counts;
  if (const char* raw = std::getenv("AH_BENCH_THREADS")) {
    const char* p = raw;
    while (*p != '\0') {
      char* end = nullptr;
      const long v = std::strtol(p, &end, 10);
      if (end == p) break;
      if (v > 0) counts.push_back(static_cast<std::size_t>(v));
      p = end;
    }
  }
  if (counts.empty()) counts = {1, 2, 4, 8};
  std::sort(counts.begin(), counts.end());
  counts.erase(std::unique(counts.begin(), counts.end()), counts.end());
  return counts;
}

std::vector<QueryPair> RandomPairs(const Graph& g, std::size_t count) {
  Rng rng(20130624);
  std::vector<QueryPair> pairs;
  pairs.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    pairs.emplace_back(static_cast<NodeId>(rng.Uniform(g.NumNodes())),
                       static_cast<NodeId>(rng.Uniform(g.NumNodes())));
  }
  return pairs;
}

struct Cell {
  double best_seconds = 0;
  Dist checksum = 0;
  double p50_us = 0;
  double p99_us = 0;
};

// Answers the whole batch on `threads` worker threads (one leased session
// each), timing every query into a shared histogram. `query(session, pair)`
// returns the query's checksum contribution. Quantiles are taken from the
// best (fastest) repetition.
template <typename QueryFn>
Cell RunCell(ConcurrentEngine& engine, const std::vector<QueryPair>& batch,
             std::size_t threads, std::size_t reps, const QueryFn& query) {
  Cell cell;
  std::vector<Dist> contributions(batch.size(), 0);
  for (std::size_t rep = 0; rep < reps; ++rep) {
    server::LatencyHistogram hist;
    std::vector<ConcurrentEngine::SessionLease> leases;
    leases.reserve(threads);
    for (std::size_t i = 0; i < threads; ++i) leases.push_back(engine.Lease());
    const std::size_t chunk =
        std::max<std::size_t>(1, batch.size() / (threads * 4));
    Timer timer;
    ParallelChunks(
        batch.size(), chunk,
        [&](std::size_t /*chunk_index*/, std::size_t begin, std::size_t end,
            std::size_t tid) {
          for (std::size_t i = begin; i < end; ++i) {
            Timer per_query;
            contributions[i] = query(*leases[tid], batch[i]);
            hist.Record(per_query.Micros());
          }
        },
        threads);
    const double seconds = timer.Seconds();
    if (rep == 0 || seconds < cell.best_seconds) {
      cell.best_seconds = seconds;
      cell.p50_us = hist.Quantile(0.5);
      cell.p99_us = hist.Quantile(0.99);
    }
  }
  for (const Dist c : contributions) cell.checksum += c;
  return cell;
}

}  // namespace

int main() {
  const std::size_t pairs_per_batch = EnvSizeT("AH_BENCH_PAIRS", 2000);
  const std::size_t reps = EnvSizeT("AH_BENCH_REPS", 3);
  const std::vector<std::size_t> thread_counts = ThreadCountsFromEnv();

  PrintHeader("fig_throughput — concurrent query scaling",
              "one shared index, N threads with per-thread sessions "
              "(queries/sec + p50/p99 latency; speedup vs the smallest "
              "thread count; distance and path series)");

  std::size_t mismatches = 0;
  for (const PreparedDataset& d : PrepareDatasets(BenchDatasetCountFromEnv(1))) {
    const std::vector<QueryPair> batch = RandomPairs(d.graph, pairs_per_batch);

    TextTable table({"dataset", "backend", "kind", "threads", "batch ms",
                     "queries/s", "speedup", "p50 us", "p99 us", "checksum"});
    for (const std::string& backend : OracleNames()) {
      Timer build;
      auto registry = std::make_shared<IndexRegistry>(
          d.graph, std::vector<std::string>{backend});
      ConcurrentEngine engine(registry);
      std::printf("[build] %-10s %.2fs\n", backend.c_str(), build.Seconds());
      std::fflush(stdout);

      const struct {
        const char* kind;
        Dist (*query)(QuerySession&, const QueryPair&);
      } series[] = {
          {"dist",
           [](QuerySession& session, const QueryPair& q) {
             const Dist dist = session.Distance(q.first, q.second);
             return dist == kInfDist ? Dist{0} : dist;
           }},
          // Fold the node count into the path checksum so a same-length,
          // different-shape answer across thread counts is caught.
          {"path",
           [](QuerySession& session, const QueryPair& q) {
             const PathResult p = session.ShortestPath(q.first, q.second);
             return p.Found() ? p.length + p.nodes.size() : Dist{0};
           }},
      };

      Dist dist_checksum = 0;
      for (const auto& s : series) {
        double base_qps = 0;
        Dist base_checksum = 0;
        for (const std::size_t threads : thread_counts) {
          const Cell cell = RunCell(engine, batch, threads, reps, s.query);
          const double qps =
              cell.best_seconds > 0
                  ? static_cast<double>(batch.size()) / cell.best_seconds
                  : 0;
          if (threads == thread_counts.front()) {
            base_qps = qps;
            base_checksum = cell.checksum;
            if (std::string_view(s.kind) == "dist") {
              dist_checksum = cell.checksum;
            }
          } else if (cell.checksum != base_checksum) {
            ++mismatches;
          }
          table.AddRow({d.spec.name, backend, s.kind, std::to_string(threads),
                        TextTable::Num(cell.best_seconds * 1e3, 2),
                        TextTable::Int(static_cast<long long>(qps)),
                        TextTable::Num(base_qps > 0 ? qps / base_qps : 0, 2),
                        TextTable::Int(static_cast<long long>(cell.p50_us)),
                        TextTable::Int(static_cast<long long>(cell.p99_us)),
                        TextTable::Int(static_cast<long long>(cell.checksum))});
        }
      }

      // Swap-under-load: the same distance batch measured while the
      // registry's background worker rebuilds this backend and swaps the
      // fresh epoch in (a delta-free reload: full rebuild cost, unchanged
      // answers, so the checksum must match the steady-state dist series).
      // A cell is marked "dist+swap~" when the rebuild had already finished
      // by the end of the timed window (fast-building backend): its numbers
      // may be partly steady state, so read the unmarked cells for the true
      // reload cost.
      {
        double base_qps = 0;
        for (const std::size_t threads : thread_counts) {
          registry->RequestReload();
          const Cell cell = RunCell(engine, batch, threads, 1, series[0].query);
          const bool overlapped = registry->RebuildInFlight();
          registry->WaitForRebuild();
          const double qps =
              cell.best_seconds > 0
                  ? static_cast<double>(batch.size()) / cell.best_seconds
                  : 0;
          if (threads == thread_counts.front()) base_qps = qps;
          if (cell.checksum != dist_checksum) ++mismatches;
          table.AddRow({d.spec.name, backend,
                        overlapped ? "dist+swap" : "dist+swap~",
                        std::to_string(threads),
                        TextTable::Num(cell.best_seconds * 1e3, 2),
                        TextTable::Int(static_cast<long long>(qps)),
                        TextTable::Num(base_qps > 0 ? qps / base_qps : 0, 2),
                        TextTable::Int(static_cast<long long>(cell.p50_us)),
                        TextTable::Int(static_cast<long long>(cell.p99_us)),
                        TextTable::Int(static_cast<long long>(cell.checksum))});
        }
      }
    }
    table.Print();
  }

  if (mismatches != 0) {
    std::printf("\nFAIL: %zu thread-count checksum mismatches\n", mismatches);
    return 1;
  }
  std::printf(
      "\nall thread counts agree on every backend's distance and path "
      "checksums\n");
  return 0;
}
