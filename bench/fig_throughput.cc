// fig_throughput: aggregate query throughput and tail latency of one shared
// immutable index served to 1/2/4/8 threads through per-thread sessions
// (ConcurrentEngine over an epoch-versioned IndexRegistry) — the
// serving-side counterpart of the paper's per-query latency figures
// (Fig. 8/9).
//
// For every backend, three series: distance queries, path queries, and a
// swap-under-load distance series ("dist+swap") measured while the
// registry's background worker rebuilds the backend and hot-swaps the new
// epoch in — the p50/p99 delta between "dist" and "dist+swap" is the
// latency cost of a live reload. The reload is delta-free (no weight
// change queued), so the rebuild cost is real but answers (and checksums)
// stay comparable across all series cells. The index is built once per
// backend; the same batch of uniform random queries is answered at each
// thread count, reporting queries/sec, speedup vs the smallest configured
// thread count, and the p50/p99 per-query latency from the serving stack's
// log-linear histogram (server/request_stats.h). The checksum must be
// identical at every thread count (each query is answered independently, so
// results are positionally deterministic); any mismatch fails the run. Path
// checksums fold in the node count, so a same-length different-shape answer
// is caught too.
//
// A fourth series benches the many-to-many matrix engine: an N×N distance
// matrix answered as ONE request (DistanceOracle::DistanceMatrix — the
// bucket technique on ch/ah, a hub bucket join on hl) vs the same N² pairs
// answered as point-query batches ("matrix-b", the `b`-verb equivalent).
// Both must produce the same checksum; the speedup_vs_batch ratio is the
// matrix engine's whole reason to exist (target ≥10x at 100×100 on a
// road-like graph for the hierarchy backends).
//
// Env knobs (on top of bench_common.h's AH_BENCH_SCALE / AH_BENCH_DATASETS):
//   AH_BENCH_PAIRS    — queries per batch (default 2000).
//   AH_BENCH_REPS     — batch repetitions per cell, best taken (default 3).
//   AH_BENCH_THREADS  — space-separated thread counts (default "1 2 4 8").
//   AH_BENCH_BACKENDS — comma-separated backend subset (default: all).
//   AH_BENCH_MATRIX   — matrix side N for the N×N series (default 100;
//                       0 disables the matrix series).
//   AH_BENCH_JSON     — path to write the machine-readable series JSON
//                       (bench_json.h; the CI perf gate input).
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "api/concurrent_engine.h"
#include "api/distance_oracle.h"
#include "api/index_registry.h"
#include "bench_common.h"
#include "bench_json.h"
#include "server/request_stats.h"
#include "util/parallel.h"
#include "util/rng.h"
#include "util/table.h"
#include "util/timer.h"

namespace {

using namespace ah;
using namespace ah::bench;

// Sorted ascending and deduplicated, so the first (smallest) count is the
// speedup baseline even for a custom AH_BENCH_THREADS order.
std::vector<std::size_t> ThreadCountsFromEnv() {
  std::vector<std::size_t> counts;
  if (const char* raw = std::getenv("AH_BENCH_THREADS")) {
    const char* p = raw;
    while (*p != '\0') {
      char* end = nullptr;
      const long v = std::strtol(p, &end, 10);
      if (end == p) break;
      if (v > 0) counts.push_back(static_cast<std::size_t>(v));
      p = end;
    }
  }
  if (counts.empty()) counts = {1, 2, 4, 8};
  std::sort(counts.begin(), counts.end());
  counts.erase(std::unique(counts.begin(), counts.end()), counts.end());
  return counts;
}

// Comma-separated AH_BENCH_BACKENDS subset (preserving the canonical
// OracleNames() order); unset or empty = every backend.
std::vector<std::string> BackendsFromEnv() {
  std::vector<std::string> filter;
  if (const char* raw = std::getenv("AH_BENCH_BACKENDS")) {
    std::string_view rest(raw);
    while (!rest.empty()) {
      const std::size_t comma = rest.find(',');
      const std::string_view name = rest.substr(0, comma);
      if (!name.empty()) filter.emplace_back(name);
      if (comma == std::string_view::npos) break;
      rest.remove_prefix(comma + 1);
    }
  }
  std::vector<std::string> backends;
  for (const std::string& name : OracleNames()) {
    if (filter.empty() ||
        std::find(filter.begin(), filter.end(), name) != filter.end()) {
      backends.push_back(name);
    }
  }
  return backends;
}

std::vector<QueryPair> RandomPairs(const Graph& g, std::size_t count) {
  Rng rng(20130624);
  std::vector<QueryPair> pairs;
  pairs.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    pairs.emplace_back(static_cast<NodeId>(rng.Uniform(g.NumNodes())),
                       static_cast<NodeId>(rng.Uniform(g.NumNodes())));
  }
  return pairs;
}

struct Cell {
  double best_seconds = 0;
  Dist checksum = 0;
  double p50_us = 0;
  double p99_us = 0;
};

// Answers the whole batch on `threads` worker threads (one leased session
// each), timing every query into a shared histogram. `query(session, pair)`
// returns the query's checksum contribution. Quantiles are taken from the
// best (fastest) repetition.
template <typename QueryFn>
Cell RunCell(ConcurrentEngine& engine, const std::vector<QueryPair>& batch,
             std::size_t threads, std::size_t reps, const QueryFn& query) {
  Cell cell;
  std::vector<Dist> contributions(batch.size(), 0);
  for (std::size_t rep = 0; rep < reps; ++rep) {
    server::LatencyHistogram hist;
    std::vector<ConcurrentEngine::SessionLease> leases;
    leases.reserve(threads);
    for (std::size_t i = 0; i < threads; ++i) leases.push_back(engine.Lease());
    const std::size_t chunk =
        std::max<std::size_t>(1, batch.size() / (threads * 4));
    Timer timer;
    ParallelChunks(
        batch.size(), chunk,
        [&](std::size_t /*chunk_index*/, std::size_t begin, std::size_t end,
            std::size_t tid) {
          for (std::size_t i = begin; i < end; ++i) {
            Timer per_query;
            contributions[i] = query(*leases[tid], batch[i]);
            hist.Record(per_query.Micros());
          }
        },
        threads);
    const double seconds = timer.Seconds();
    if (rep == 0 || seconds < cell.best_seconds) {
      cell.best_seconds = seconds;
      cell.p50_us = hist.Quantile(0.5);
      cell.p99_us = hist.Quantile(0.99);
    }
  }
  for (const Dist c : contributions) cell.checksum += c;
  return cell;
}

/// Deterministic matrix locations: the first `n` draws become sources, the
/// next `n` targets (one seeded stream, independent of the pair batch).
void MatrixLocations(const Graph& g, std::size_t n,
                     std::vector<NodeId>* sources,
                     std::vector<NodeId>* targets) {
  Rng rng(20130624);
  for (std::size_t i = 0; i < n; ++i) {
    sources->push_back(static_cast<NodeId>(rng.Uniform(g.NumNodes())));
  }
  for (std::size_t i = 0; i < n; ++i) {
    targets->push_back(static_cast<NodeId>(rng.Uniform(g.NumNodes())));
  }
}

/// Same checksum folding as the dist series: unreachable contributes 0.
Dist FoldCells(const std::vector<Dist>& cells) {
  Dist sum = 0;
  for (const Dist c : cells) sum += c == kInfDist ? Dist{0} : c;
  return sum;
}

/// One N×N matrix answered as a single request, `reps` times, best taken.
Cell RunMatrixCell(ConcurrentEngine& engine,
                   const std::vector<NodeId>& sources,
                   const std::vector<NodeId>& targets, std::size_t threads,
                   std::size_t reps) {
  Cell cell;
  for (std::size_t rep = 0; rep < reps; ++rep) {
    Timer timer;
    const std::vector<Dist> cells =
        engine.DistanceMatrix(sources, targets, threads);
    const double seconds = timer.Seconds();
    if (rep == 0 || seconds < cell.best_seconds) {
      cell.best_seconds = seconds;
      // One matrix = one request: its whole-request latency is the quantile.
      cell.p50_us = cell.p99_us = seconds * 1e6;
    }
    if (rep == 0) cell.checksum = FoldCells(cells);
  }
  return cell;
}

}  // namespace

int main() {
  const std::size_t pairs_per_batch = EnvSizeT("AH_BENCH_PAIRS", 2000);
  const std::size_t reps = EnvSizeT("AH_BENCH_REPS", 3);
  const std::size_t matrix_n = EnvSizeT("AH_BENCH_MATRIX", 100);
  const std::vector<std::size_t> thread_counts = ThreadCountsFromEnv();
  const std::vector<std::string> backends = BackendsFromEnv();
  BenchJson json("fig_throughput");

  PrintHeader("fig_throughput — concurrent query scaling",
              "one shared index, N threads with per-thread sessions "
              "(queries/sec + p50/p99 latency; speedup vs the smallest "
              "thread count; distance, path, and NxN matrix series)");

  std::size_t mismatches = 0;
  for (const PreparedDataset& d : PrepareDatasets(BenchDatasetCountFromEnv(1))) {
    const std::vector<QueryPair> batch = RandomPairs(d.graph, pairs_per_batch);

    TextTable table({"dataset", "backend", "kind", "threads", "batch ms",
                     "queries/s", "speedup", "p50 us", "p99 us", "checksum"});
    for (const std::string& backend : backends) {
      Timer build;
      auto registry = std::make_shared<IndexRegistry>(
          d.graph, std::vector<std::string>{backend});
      ConcurrentEngine engine(registry);
      std::printf("[build] %-10s %.2fs\n", backend.c_str(), build.Seconds());
      std::fflush(stdout);

      const struct {
        const char* kind;
        Dist (*query)(QuerySession&, const QueryPair&);
      } series[] = {
          {"dist",
           [](QuerySession& session, const QueryPair& q) {
             const Dist dist = session.Distance(q.first, q.second);
             return dist == kInfDist ? Dist{0} : dist;
           }},
          // Fold the node count into the path checksum so a same-length,
          // different-shape answer across thread counts is caught.
          {"path",
           [](QuerySession& session, const QueryPair& q) {
             const PathResult p = session.ShortestPath(q.first, q.second);
             return p.Found() ? p.length + p.nodes.size() : Dist{0};
           }},
      };

      Dist dist_checksum = 0;
      for (const auto& s : series) {
        double base_qps = 0;
        Dist base_checksum = 0;
        for (const std::size_t threads : thread_counts) {
          const Cell cell = RunCell(engine, batch, threads, reps, s.query);
          const double qps =
              cell.best_seconds > 0
                  ? static_cast<double>(batch.size()) / cell.best_seconds
                  : 0;
          if (threads == thread_counts.front()) {
            base_qps = qps;
            base_checksum = cell.checksum;
            if (std::string_view(s.kind) == "dist") {
              dist_checksum = cell.checksum;
            }
          } else if (cell.checksum != base_checksum) {
            ++mismatches;
          }
          table.AddRow({d.spec.name, backend, s.kind, std::to_string(threads),
                        TextTable::Num(cell.best_seconds * 1e3, 2),
                        TextTable::Int(static_cast<long long>(qps)),
                        TextTable::Num(base_qps > 0 ? qps / base_qps : 0, 2),
                        TextTable::Int(static_cast<long long>(cell.p50_us)),
                        TextTable::Int(static_cast<long long>(cell.p99_us)),
                        TextTable::Int(static_cast<long long>(cell.checksum))});
          json.AddSeries(d.spec.name + "/" + backend + "/" + s.kind + "/t" +
                             std::to_string(threads),
                         qps, cell.p50_us, cell.p99_us, cell.checksum);
        }
      }

      // N×N matrix: one request through the matrix engine vs the same N²
      // pairs as point-query batches (what a `b`-only client would send).
      // Checksums must agree between the two and across thread counts.
      if (matrix_n > 0) {
        std::vector<NodeId> msources;
        std::vector<NodeId> mtargets;
        MatrixLocations(d.graph, matrix_n, &msources, &mtargets);
        std::vector<QueryPair> cross;
        cross.reserve(matrix_n * matrix_n);
        for (const NodeId s : msources) {
          for (const NodeId t : mtargets) cross.emplace_back(s, t);
        }
        const auto dist_query = [](QuerySession& session, const QueryPair& q) {
          const Dist dist = session.Distance(q.first, q.second);
          return dist == kInfDist ? Dist{0} : dist;
        };
        const std::string shape =
            std::to_string(matrix_n) + "x" + std::to_string(matrix_n);
        double matrix_base_qps = 0;
        double batch_base_qps = 0;
        Dist matrix_base_checksum = 0;
        for (const std::size_t threads : thread_counts) {
          const Cell mcell =
              RunMatrixCell(engine, msources, mtargets, threads, reps);
          // The pairs side is the slow one by design: a single rep bounds
          // the bench's runtime without touching the matrix measurement.
          const Cell bcell = RunCell(engine, cross, threads, 1, dist_query);
          const double mqps =
              mcell.best_seconds > 0
                  ? static_cast<double>(cross.size()) / mcell.best_seconds
                  : 0;
          const double bqps =
              bcell.best_seconds > 0
                  ? static_cast<double>(cross.size()) / bcell.best_seconds
                  : 0;
          const double speedup_vs_batch = bqps > 0 ? mqps / bqps : 0;
          if (threads == thread_counts.front()) {
            matrix_base_qps = mqps;
            batch_base_qps = bqps;
            matrix_base_checksum = mcell.checksum;
            std::printf("[matrix] %-10s %s: one request %.2f ms vs b-batch "
                        "%.2f ms -> %.1fx\n",
                        backend.c_str(), shape.c_str(),
                        mcell.best_seconds * 1e3, bcell.best_seconds * 1e3,
                        speedup_vs_batch);
            std::fflush(stdout);
          } else if (mcell.checksum != matrix_base_checksum) {
            ++mismatches;
          }
          if (mcell.checksum != bcell.checksum) ++mismatches;
          table.AddRow(
              {d.spec.name, backend, "matrix " + shape,
               std::to_string(threads),
               TextTable::Num(mcell.best_seconds * 1e3, 2),
               TextTable::Int(static_cast<long long>(mqps)),
               TextTable::Num(matrix_base_qps > 0 ? mqps / matrix_base_qps : 0,
                              2),
               TextTable::Int(static_cast<long long>(mcell.p50_us)),
               TextTable::Int(static_cast<long long>(mcell.p99_us)),
               TextTable::Int(static_cast<long long>(mcell.checksum))});
          table.AddRow(
              {d.spec.name, backend, "matrix-b " + shape,
               std::to_string(threads),
               TextTable::Num(bcell.best_seconds * 1e3, 2),
               TextTable::Int(static_cast<long long>(bqps)),
               TextTable::Num(batch_base_qps > 0 ? bqps / batch_base_qps : 0,
                              2),
               TextTable::Int(static_cast<long long>(bcell.p50_us)),
               TextTable::Int(static_cast<long long>(bcell.p99_us)),
               TextTable::Int(static_cast<long long>(bcell.checksum))});
          json.AddSeries(
              d.spec.name + "/" + backend + "/matrix/t" +
                  std::to_string(threads),
              mqps, mcell.p50_us, mcell.p99_us, mcell.checksum,
              {{"speedup_vs_batch", speedup_vs_batch}});
          json.AddSeries(d.spec.name + "/" + backend + "/matrix-b/t" +
                             std::to_string(threads),
                         bqps, bcell.p50_us, bcell.p99_us, bcell.checksum);
        }
      }

      // Swap-under-load: the same distance batch measured while the
      // registry's background worker rebuilds this backend and swaps the
      // fresh epoch in (a delta-free reload: full rebuild cost, unchanged
      // answers, so the checksum must match the steady-state dist series).
      // A cell is marked "dist+swap~" when the rebuild had already finished
      // by the end of the timed window (fast-building backend): its numbers
      // may be partly steady state, so read the unmarked cells for the true
      // reload cost.
      {
        double base_qps = 0;
        for (const std::size_t threads : thread_counts) {
          registry->RequestReload();
          const Cell cell = RunCell(engine, batch, threads, 1, series[0].query);
          const bool overlapped = registry->RebuildInFlight();
          registry->WaitForRebuild();
          const double qps =
              cell.best_seconds > 0
                  ? static_cast<double>(batch.size()) / cell.best_seconds
                  : 0;
          if (threads == thread_counts.front()) base_qps = qps;
          if (cell.checksum != dist_checksum) ++mismatches;
          table.AddRow({d.spec.name, backend,
                        overlapped ? "dist+swap" : "dist+swap~",
                        std::to_string(threads),
                        TextTable::Num(cell.best_seconds * 1e3, 2),
                        TextTable::Int(static_cast<long long>(qps)),
                        TextTable::Num(base_qps > 0 ? qps / base_qps : 0, 2),
                        TextTable::Int(static_cast<long long>(cell.p50_us)),
                        TextTable::Int(static_cast<long long>(cell.p99_us)),
                        TextTable::Int(static_cast<long long>(cell.checksum))});
        }
      }
    }
    table.Print();
  }

  if (mismatches != 0) {
    std::printf("\nFAIL: %zu checksum mismatches (thread counts or "
                "matrix-vs-batch)\n",
                mismatches);
    return 1;
  }
  if (!json.WriteToEnvPath()) return 1;
  std::printf(
      "\nall thread counts agree on every backend's distance, path, and "
      "matrix checksums\n");
  return 0;
}
