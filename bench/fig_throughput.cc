// fig_throughput: aggregate query throughput of one shared immutable index
// served to 1/2/4/8 threads through per-thread sessions (ConcurrentEngine) —
// the repo's first scaling numbers, the serving-side counterpart of the
// paper's per-query latency figures (Fig. 8/9).
//
// For every backend: build the index once, then answer the same batch of
// uniform random queries at each thread count and report queries/sec and
// speedup vs the smallest configured thread count (1 by default). The
// distance checksum must be identical at every
// thread count (each query is answered independently, so results are
// positionally deterministic); any mismatch fails the run.
//
// Env knobs (on top of bench_common.h's AH_BENCH_SCALE / AH_BENCH_DATASETS):
//   AH_BENCH_PAIRS    — queries per batch (default 2000).
//   AH_BENCH_REPS     — batch repetitions per cell, best taken (default 3).
//   AH_BENCH_THREADS  — space-separated thread counts (default "1 2 4 8").
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "api/concurrent_engine.h"
#include "api/distance_oracle.h"
#include "bench_common.h"
#include "util/rng.h"
#include "util/table.h"
#include "util/timer.h"

namespace {

using namespace ah;
using namespace ah::bench;

// Sorted ascending and deduplicated, so the first (smallest) count is the
// speedup baseline even for a custom AH_BENCH_THREADS order.
std::vector<std::size_t> ThreadCountsFromEnv() {
  std::vector<std::size_t> counts;
  if (const char* raw = std::getenv("AH_BENCH_THREADS")) {
    const char* p = raw;
    while (*p != '\0') {
      char* end = nullptr;
      const long v = std::strtol(p, &end, 10);
      if (end == p) break;
      if (v > 0) counts.push_back(static_cast<std::size_t>(v));
      p = end;
    }
  }
  if (counts.empty()) counts = {1, 2, 4, 8};
  std::sort(counts.begin(), counts.end());
  counts.erase(std::unique(counts.begin(), counts.end()), counts.end());
  return counts;
}

std::vector<QueryPair> RandomPairs(const Graph& g, std::size_t count) {
  Rng rng(20130624);
  std::vector<QueryPair> pairs;
  pairs.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    pairs.emplace_back(static_cast<NodeId>(rng.Uniform(g.NumNodes())),
                       static_cast<NodeId>(rng.Uniform(g.NumNodes())));
  }
  return pairs;
}

Dist Checksum(const std::vector<Dist>& results) {
  Dist sum = 0;
  for (const Dist d : results) {
    if (d != kInfDist) sum += d;
  }
  return sum;
}

}  // namespace

int main() {
  const std::size_t pairs_per_batch = EnvSizeT("AH_BENCH_PAIRS", 2000);
  const std::size_t reps = EnvSizeT("AH_BENCH_REPS", 3);
  const std::vector<std::size_t> thread_counts = ThreadCountsFromEnv();

  PrintHeader("fig_throughput — concurrent query scaling",
              "one shared index, N threads with per-thread sessions "
              "(queries/sec, speedup vs the smallest thread count)");

  std::size_t mismatches = 0;
  for (const PreparedDataset& d : PrepareDatasets(BenchDatasetCountFromEnv(1))) {
    const std::vector<QueryPair> batch = RandomPairs(d.graph, pairs_per_batch);

    TextTable table({"dataset", "backend", "threads", "batch ms",
                     "queries/s", "speedup", "checksum"});
    for (const std::string& backend : OracleNames()) {
      Timer build;
      ConcurrentEngine engine(MakeOracle(backend, d.graph));
      std::printf("[build] %-10s %.2fs\n", backend.c_str(), build.Seconds());
      std::fflush(stdout);

      double base_qps = 0;
      Dist base_checksum = 0;
      for (const std::size_t threads : thread_counts) {
        double best_seconds = 0;
        Dist checksum = 0;
        for (std::size_t rep = 0; rep < reps; ++rep) {
          Timer timer;
          const std::vector<Dist> results =
              engine.BatchDistance(batch, threads);
          const double seconds = timer.Seconds();
          if (rep == 0 || seconds < best_seconds) best_seconds = seconds;
          checksum = Checksum(results);
        }
        const double qps =
            best_seconds > 0
                ? static_cast<double>(batch.size()) / best_seconds
                : 0;
        if (threads == thread_counts.front()) {
          base_qps = qps;
          base_checksum = checksum;
        } else if (checksum != base_checksum) {
          ++mismatches;
        }
        table.AddRow({d.spec.name, backend, std::to_string(threads),
                      TextTable::Num(best_seconds * 1e3, 2),
                      TextTable::Int(static_cast<long long>(qps)),
                      TextTable::Num(base_qps > 0 ? qps / base_qps : 0, 2),
                      TextTable::Int(static_cast<long long>(checksum))});
      }
    }
    table.Print();
  }

  if (mismatches != 0) {
    std::printf("\nFAIL: %zu thread-count checksum mismatches\n", mismatches);
    return 1;
  }
  std::printf("\nall thread counts agree on every backend's checksum\n");
  return 0;
}
